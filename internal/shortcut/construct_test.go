package shortcut_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// TestConstructRespectsCap: the flooding construction never exceeds the
// congestion cap, at any cap.
func TestConstructRespectsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := gen.Grid(8, 8)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(e.G, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 2, 4, 8, 16} {
		s := shortcut.Construct(e.G, tr, p, cap)
		if m := s.Measure(); m.Congestion > cap {
			t.Fatalf("cap %d exceeded: congestion %d", cap, m.Congestion)
		}
	}
}

// TestConstructFixedPointSemantics pins the eviction rule on a hand-built
// instance: a path rooted at one end, three singleton parts at the far end.
// With cap 1 only the lowest part ID survives past the merge point; with
// cap 3 all three climb to the root.
func TestConstructFixedPointSemantics(t *testing.T) {
	// Star of three arms meeting at vertex 0, rooted at 0:
	// arms 0-1, 0-2, 0-3 extended by one: 1-4, 2-5, 3-6.
	g := graph.New(7)
	e01 := g.AddEdge(0, 1, 1)
	e02 := g.AddEdge(0, 2, 1)
	e03 := g.AddEdge(0, 3, 1)
	e14 := g.AddEdge(1, 4, 1)
	e25 := g.AddEdge(2, 5, 1)
	e36 := g.AddEdge(3, 6, 1)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(g, [][]int{{4}, {5}, {6}})
	if err != nil {
		t.Fatal(err)
	}
	// cap 3: every part climbs its whole arm.
	s3 := shortcut.Construct(g, tr, p, 3)
	wantAll := [][]int{{e01, e14}, {e02, e25}, {e03, e36}}
	for i, want := range wantAll {
		if len(s3.Edges[i]) != len(want) {
			t.Fatalf("cap 3 part %d: edges %v want %v", i, s3.Edges[i], want)
		}
	}
	// cap 1: arms are private (one part each), so each part still claims
	// both its arm edges — the cap binds per edge, not per node.
	s1 := shortcut.Construct(g, tr, p, 1)
	for i, want := range wantAll {
		if len(s1.Edges[i]) != len(want) {
			t.Fatalf("cap 1 part %d: edges %v want %v", i, s1.Edges[i], want)
		}
	}
	// Now merge the arms: a path 0-1-2 with parts at 3,4,5 all hanging off 2.
	h := graph.New(6)
	h01 := h.AddEdge(0, 1, 1)
	h12 := h.AddEdge(1, 2, 1)
	h23 := h.AddEdge(2, 3, 1)
	h24 := h.AddEdge(2, 4, 1)
	h25 := h.AddEdge(2, 5, 1)
	htr, err := graph.BFSTree(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := partition.New(h, [][]int{{3}, {4}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	hs := shortcut.Construct(h, htr, hp, 1)
	// All three reach vertex 2 over their private leaf edges; above 2 only
	// part 0 (lowest ID) is admitted, the rest are evicted.
	if got := hs.Edges[0]; len(got) != 3 || got[0] != h01 || got[1] != h12 || got[2] != h23 {
		t.Fatalf("cap 1 priority part: edges %v want [%d %d %d]", got, h01, h12, h23)
	}
	if got := hs.Edges[1]; len(got) != 1 || got[0] != h24 {
		t.Fatalf("evicted part 1: edges %v want [%d]", got, h24)
	}
	if got := hs.Edges[2]; len(got) != 1 || got[0] != h25 {
		t.Fatalf("evicted part 2: edges %v want [%d]", got, h25)
	}
}

// TestConstructImprovesOverEmpty: on the adversarial grid-rows family the
// flooding construction must beat the empty shortcut.
func TestConstructImprovesOverEmpty(t *testing.T) {
	e := gen.Grid(10, 10)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.GridRows(e.G, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	empty := shortcut.Empty(e.G, tr, p).Measure()
	auto, err := shortcut.ConstructAuto(e.G, tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if auto.S == nil || auto.Cap < 1 {
		t.Fatalf("no construction returned (cap %d)", auto.Cap)
	}
	if auto.M.Quality >= empty.Quality {
		t.Fatalf("flooding quality %d no better than empty %d", auto.M.Quality, empty.Quality)
	}
}

// TestConstructAutoNoWorseThanCapOne: the cap sweep can only improve on the
// minimum cap.
func TestConstructAutoNoWorseThanCapOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.ErdosRenyiConnected(60, 120, rng)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(g, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	one := shortcut.Construct(g, tr, p, 1).Measure()
	auto, err := shortcut.ConstructAuto(g, tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if auto.M.Quality > one.Quality {
		t.Fatalf("auto quality %d worse than cap-1 quality %d", auto.M.Quality, one.Quality)
	}
}

// TestConstructAutoEmptyParts: an empty part family is an explicit error,
// not a nil shortcut masquerading as a construction (the zero-masquerade
// class again).
func TestConstructAutoEmptyParts(t *testing.T) {
	e := gen.Grid(3, 3)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(e.G, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := shortcut.ConstructAuto(e.G, tr, p); err == nil {
		t.Fatalf("empty part family returned %+v instead of an error", res)
	}
}

// TestConstructAutoGuessCount pins the tightened doubling loop: caps are
// 1, 2, 4, ... clamped to the part count, with no wasted iteration beyond
// it — 4 parts take exactly 3 guesses (1, 2, 4), 5 parts exactly 4
// (1, 2, 4, 5); the old loop ran one extra doubling past the part count.
func TestConstructAutoGuessCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := gen.Grid(6, 6)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ parts, guesses int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {8, 4},
	} {
		p, err := partition.Voronoi(e.G, tc.parts, rng)
		if err != nil {
			t.Fatal(err)
		}
		auto, err := shortcut.ConstructAuto(e.G, tr, p)
		if err != nil {
			t.Fatal(err)
		}
		if auto.Guesses != tc.guesses {
			t.Fatalf("%d parts: %d guesses, want %d", tc.parts, auto.Guesses, tc.guesses)
		}
		if auto.Cap > tc.parts {
			t.Fatalf("%d parts: winning cap %d exceeds the part count", tc.parts, auto.Cap)
		}
	}
}

// TestBlockTopsSumToBlockCounts: the per-vertex locally decidable top
// indicators decompose the block parameter exactly — per part, the number
// of vertices topping a block equals BlockCounts — across flooding
// constructions at several caps and the oblivious construction. This is
// the invariant the cap search's pipelined block-count convergecast
// streams to the root.
func TestBlockTopsSumToBlockCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		g := gen.DistinctWeights(gen.UniformWeights(gen.ErdosRenyiConnected(30+rng.Intn(30), 120, rng), rng))
		tr, err := graph.BFSTree(g, rng.Intn(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := partition.Voronoi(g, 2+rng.Intn(6), rng)
		if err != nil {
			t.Fatal(err)
		}
		check := func(name string, s *shortcut.Shortcut) {
			t.Helper()
			counts := s.BlockCounts()
			sums := make([]int, p.NumParts())
			for v, tops := range s.BlockTops() {
				for i := 1; i < len(tops); i++ {
					if tops[i] <= tops[i-1] {
						t.Fatalf("%s vertex %d: tops not sorted/distinct: %v", name, v, tops)
					}
				}
				for _, pi := range tops {
					sums[pi]++
				}
			}
			for i := range counts {
				if sums[i] != counts[i] {
					t.Fatalf("%s part %d: %d tops, BlockCounts has %d", name, i, sums[i], counts[i])
				}
			}
		}
		for _, cap := range []int{1, 2, p.NumParts()} {
			check("construct", shortcut.Construct(g, tr, p, cap))
		}
		s, _ := shortcut.ObliviousAuto(g, tr, p)
		check("oblivious", s)
		check("empty", shortcut.Empty(g, tr, p))
	}
}

package shortcut_test

import (
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/xrand"
)

// referenceMeasure recomputes a shortcut's measurement with the original
// map-based bookkeeping, as an oracle for the dense scratch-arena rewrite.
func referenceMeasure(s *shortcut.Shortcut) shortcut.Measurement {
	m := shortcut.Measurement{TreeDiameter: 2 * s.T.Height()}
	if m.TreeDiameter == 0 {
		m.TreeDiameter = 1
	}
	use := make(map[int]int)
	for _, ids := range s.Edges {
		for _, id := range ids {
			use[id]++
		}
	}
	for _, c := range use {
		if c > m.Congestion {
			m.Congestion = c
		}
	}
	m.Blocks = make([]int, s.P.NumParts())
	for i, ids := range s.Edges {
		uf := graph.NewUnionFind(s.G.N())
		for _, id := range ids {
			e := s.G.Edge(id)
			uf.Union(e.U, e.V)
		}
		reps := make(map[int]bool)
		for _, v := range s.P.Sets[i] {
			reps[uf.Find(v)] = true
		}
		m.Blocks[i] = len(reps)
	}
	for _, b := range m.Blocks {
		if b > m.MaxBlocks {
			m.MaxBlocks = b
		}
	}
	m.Quality = m.MaxBlocks*m.TreeDiameter + m.Congestion
	return m
}

func randomDenseInstance(t *testing.T, seed int64) *shortcut.Shortcut {
	t.Helper()
	rng := xrand.New(seed)
	g := gen.ErdosRenyiConnected(40+rng.Intn(40), 120, rng)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(g, 4+rng.Intn(6), rng)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	return s
}

// TestMeasureMatchesMapReference is the property test for the scratch-arena
// rewrite: on seeded random graphs, Measure and BlockCounts must agree
// exactly with the straightforward map-based implementation they replaced.
func TestMeasureMatchesMapReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		s := randomDenseInstance(t, seed)
		got := s.Measure()
		want := referenceMeasure(s)
		if got.Congestion != want.Congestion || got.MaxBlocks != want.MaxBlocks ||
			got.TreeDiameter != want.TreeDiameter || got.Quality != want.Quality {
			t.Fatalf("seed %d: dense measurement %+v != reference %+v", seed, got, want)
		}
		if len(got.Blocks) != len(want.Blocks) {
			t.Fatalf("seed %d: block count lengths differ", seed)
		}
		for i := range got.Blocks {
			if got.Blocks[i] != want.Blocks[i] {
				t.Fatalf("seed %d part %d: blocks %d != reference %d", seed, i, got.Blocks[i], want.Blocks[i])
			}
		}
	}
}

// TestMeasureRepeatedIsStable re-measures the same shortcut: the pooled
// scratch arenas must not leak state between runs.
func TestMeasureRepeatedIsStable(t *testing.T) {
	s := randomDenseInstance(t, 7)
	first := s.Measure()
	for i := 0; i < 5; i++ {
		if again := s.Measure(); again.Quality != first.Quality || again.Congestion != first.Congestion || again.MaxBlocks != first.MaxBlocks {
			t.Fatalf("measurement drifted on re-run: %+v vs %+v", again, first)
		}
	}
}

// TestMeasureAllocs asserts the arena actually removed the per-measure map
// churn: a Measure call on a warmed pool allocates only its result (a
// handful of objects, versus hundreds for the map-based version).
func TestMeasureAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	s := randomDenseInstance(t, 11)
	s.Measure() // warm the scratch pool
	allocs := testing.AllocsPerRun(50, func() { s.Measure() })
	if allocs > 10 {
		t.Fatalf("Measure allocates %.0f objects per run; want <= 10", allocs)
	}
}

// TestAugmentedDiameterMatchesReference cross-checks the dense
// AugmentedDiameter against a map-based reconstruction.
func TestAugmentedDiameterMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := randomDenseInstance(t, 100+seed)
		for i := 0; i < s.P.NumParts(); i++ {
			want := referenceAugmentedDiameter(s, i)
			got, err := s.AugmentedDiameter(i)
			if want < 0 {
				if err == nil {
					t.Fatalf("seed %d part %d: disconnected augmented subgraph accepted", seed, i)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d part %d: %v", seed, i, err)
			}
			if got != want {
				t.Fatalf("seed %d part %d: augmented diameter %d != reference %d", seed, i, got, want)
			}
		}
	}
}

func referenceAugmentedDiameter(s *shortcut.Shortcut, i int) int {
	in := make(map[int]bool)
	for _, v := range s.P.Sets[i] {
		in[v] = true
	}
	for _, id := range s.Edges[i] {
		e := s.G.Edge(id)
		in[e.U] = true
		in[e.V] = true
	}
	verts := make([]int, 0, len(in))
	for v := range in {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	idx := make(map[int]int, len(verts))
	for li, v := range verts {
		idx[v] = li
	}
	aug := graph.New(len(verts))
	partIn := make(map[int]bool, len(s.P.Sets[i]))
	for _, v := range s.P.Sets[i] {
		partIn[v] = true
	}
	for id := 0; id < s.G.M(); id++ {
		e := s.G.Edge(id)
		if partIn[e.U] && partIn[e.V] {
			aug.AddEdge(idx[e.U], idx[e.V], 1)
		}
	}
	for _, id := range s.Edges[i] {
		e := s.G.Edge(id)
		aug.AddEdge(idx[e.U], idx[e.V], 1)
	}
	return graph.Diameter(aug)
}

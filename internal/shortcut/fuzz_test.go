package shortcut

import (
	"sort"
	"testing"
)

// decodeIDs turns fuzz bytes into a small int slice (values 0..31, so
// collisions — the interesting case — are common).
func decodeIDs(data []byte) []int {
	out := make([]int, len(data))
	for i, b := range data {
		out[i] = int(b % 32)
	}
	return out
}

func isSortedDeduped(s []int) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// FuzzSortedDedup checks the normalization invariants: output sorted and
// duplicate-free, exactly the distinct input values, never aliasing the
// input.
func FuzzSortedDedup(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{3, 1, 3, 2, 1})
	f.Add([]byte{5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := decodeIDs(data)
		orig := append([]int(nil), in...)
		out := sortedDedup(in)
		if !isSortedDeduped(out) {
			t.Fatalf("not sorted/deduped: %v", out)
		}
		// Same distinct value set.
		want := map[int]bool{}
		for _, v := range orig {
			want[v] = true
		}
		if len(out) != len(want) {
			t.Fatalf("%d distinct values, got %d: in=%v out=%v", len(want), len(out), orig, out)
		}
		for _, v := range out {
			if !want[v] {
				t.Fatalf("value %d not in input %v", v, orig)
			}
		}
		// Input must be untouched (sortedDedup copies before sorting).
		for i, v := range in {
			if v != orig[i] {
				t.Fatalf("input mutated at %d: %v vs %v", i, in, orig)
			}
		}
		// The output must not alias the input's backing array.
		if len(out) > 0 && len(in) > 0 {
			save := out[0]
			out[0] = -99
			if in[0] == -99 {
				t.Fatal("output aliases input")
			}
			out[0] = save
		}
	})
}

// FuzzMergeSorted checks the union-merge invariants: output sorted and
// duplicate-free, equal to the set union, inputs untouched, and no aliasing
// of either input (the PR 2 regression class).
func FuzzMergeSorted(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{})
	f.Add([]byte{}, []byte{4, 5})
	f.Add([]byte{1, 3, 5}, []byte{2, 3, 4})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a := sortedDedup(decodeIDs(da))
		b := sortedDedup(decodeIDs(db))
		origA := append([]int(nil), a...)
		origB := append([]int(nil), b...)
		out := mergeSorted(a, b)
		if !isSortedDeduped(out) {
			t.Fatalf("not sorted/deduped: %v", out)
		}
		union := map[int]bool{}
		for _, v := range origA {
			union[v] = true
		}
		for _, v := range origB {
			union[v] = true
		}
		keys := make([]int, 0, len(union))
		for v := range union {
			keys = append(keys, v)
		}
		sort.Ints(keys)
		if len(out) != len(keys) {
			t.Fatalf("union size %d, got %d: a=%v b=%v out=%v", len(keys), len(out), origA, origB, out)
		}
		for i, v := range keys {
			if out[i] != v {
				t.Fatalf("union mismatch at %d: %v vs %v", i, out, keys)
			}
		}
		for i, v := range a {
			if v != origA[i] {
				t.Fatalf("input a mutated: %v vs %v", a, origA)
			}
		}
		for i, v := range b {
			if v != origB[i] {
				t.Fatalf("input b mutated: %v vs %v", b, origB)
			}
		}
		// No aliasing of either input: mutating the output must not leak.
		if len(out) > 0 {
			save := out[0]
			out[0] = -99
			if (len(a) > 0 && a[0] == -99) || (len(b) > 0 && b[0] == -99) {
				t.Fatal("output aliases an input")
			}
			out[0] = save
		}
	})
}

package shortcut

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Oblivious constructs a T-restricted shortcut without any structural
// knowledge of the graph, in the spirit of the distributed construction of
// [HIZ16a]: every part grows tokens up the tree from each of its vertices,
// level-synchronously, claiming parent edges as long as the edge's
// congestion stays below the budget. Tokens of the same part merge when they
// meet. Congestion is at most `budget` by construction; the block parameter
// is whatever the graph's structure forces — on graphs admitting good
// shortcuts (the paper's excluded-minor families) it comes out small, on the
// lower-bound family it does not.
func Oblivious(g *graph.Graph, t *graph.Tree, p *partition.Parts, budget int) *Shortcut {
	if budget < 1 {
		budget = 1
	}
	numParts := p.NumParts()
	load := make([]int, g.M())                // parts currently using each tree edge
	claimed := make([]map[int]bool, numParts) // per part: claimed edge set
	frontier := make([][]int, numParts)       // per part: token positions (vertices)
	atVertex := make([]map[int]bool, numParts)
	for i := 0; i < numParts; i++ {
		claimed[i] = make(map[int]bool)
		atVertex[i] = make(map[int]bool)
		for _, v := range p.Sets[i] {
			if !atVertex[i][v] {
				atVertex[i][v] = true
				frontier[i] = append(frontier[i], v)
			}
		}
	}
	// Level-synchronous upward claiming: in each step every token tries to
	// move one edge toward the root. Deterministic order: parts then
	// vertices ascending.
	for moved := true; moved; {
		moved = false
		for i := 0; i < numParts; i++ {
			var next []int
			for _, v := range frontier[i] {
				pe := t.ParentEdge[v]
				if pe == -1 {
					continue // at root
				}
				pv := t.Parent[v]
				if claimed[i][pe] {
					// Shouldn't happen (tokens merge), but harmless.
					continue
				}
				if atVertex[i][pv] {
					// Another token of this part already covers the parent:
					// still claim the connecting edge if budget allows, to
					// merge blocks.
					if load[pe] < budget {
						load[pe]++
						claimed[i][pe] = true
						moved = true
					}
					continue
				}
				if load[pe] >= budget {
					continue // blocked: token dies here
				}
				load[pe]++
				claimed[i][pe] = true
				atVertex[i][pv] = true
				next = append(next, pv)
				moved = true
			}
			frontier[i] = next
		}
	}
	edges := make([][]int, numParts)
	for i := range edges {
		for id := range claimed[i] {
			//lint:allow detmap shortcut.New sorts and dedups every edge list, so map order never escapes
			edges[i] = append(edges[i], id)
		}
	}
	s, err := New(g, t, p, edges)
	if err != nil {
		panic(fmt.Sprintf("shortcut.Oblivious: internal error: %v", err))
	}
	return s
}

// ObliviousAuto searches over geometric congestion budgets and returns the
// shortcut with the best measured quality, mirroring [HIZ16a]'s
// approximately-optimal construction by trying O(log n) guesses.
func ObliviousAuto(g *graph.Graph, t *graph.Tree, p *partition.Parts) (*Shortcut, Measurement) {
	var best *Shortcut
	var bestM Measurement
	for budget := 1; budget <= 2*g.N(); budget *= 2 {
		s := Oblivious(g, t, p, budget)
		m := s.Measure()
		if best == nil || m.Quality < bestM.Quality {
			best, bestM = s, m
		}
		if budget > p.NumParts() {
			break // more budget than parts cannot help further
		}
	}
	return best, bestM
}

// WholeTree assigns the entire spanning tree to the listed parts (the
// paper's treatment of parts containing an apex: they get all of T).
func WholeTree(s *Shortcut, parts []int) {
	all := s.T.TreeEdgeIDs()
	for _, i := range parts {
		s.Edges[i] = append([]int(nil), all...)
	}
}

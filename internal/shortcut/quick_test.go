package shortcut_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// randomInstance builds a random connected graph, BFS tree, Voronoi parts,
// and a random T-restricted assignment.
func randomInstance(seed int64) (*graph.Graph, *graph.Tree, *partition.Parts, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	n := 6 + rng.Intn(60)
	g := gen.ErdosRenyiConnected(n, n+rng.Intn(2*n), rng)
	t, err := graph.BFSTree(g, rng.Intn(n))
	if err != nil {
		panic(err)
	}
	p, err := partition.Voronoi(g, 1+rng.Intn(6), rng)
	if err != nil {
		panic(err)
	}
	treeIDs := t.TreeEdgeIDs()
	edges := make([][]int, p.NumParts())
	for i := range edges {
		for _, id := range treeIDs {
			if rng.Float64() < 0.3 {
				edges[i] = append(edges[i], id)
			}
		}
	}
	return g, t, p, edges
}

// TestQuickMeasurementLaws: congestion equals the naive per-edge maximum,
// quality = b·d + c, blocks >= 1, and every part's block count is at most
// its size.
func TestQuickMeasurementLaws(t *testing.T) {
	f := func(seed int64) bool {
		g, tr, p, edges := randomInstance(seed)
		s, err := shortcut.New(g, tr, p, edges)
		if err != nil {
			return false
		}
		m := s.Measure()
		// Naive congestion.
		count := make(map[int]int)
		for _, ids := range s.Edges {
			for _, id := range ids {
				count[id]++
			}
		}
		maxC := 0
		for _, c := range count {
			if c > maxC {
				maxC = c
			}
		}
		if m.Congestion != maxC {
			return false
		}
		if m.Quality != m.MaxBlocks*m.TreeDiameter+m.Congestion {
			return false
		}
		for i, b := range m.Blocks {
			if b < 1 || b > len(p.Sets[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionIdempotent: s ∪ s == s, and s ∪ empty == s.
func TestQuickUnionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g, tr, p, edges := randomInstance(seed)
		s1, err := shortcut.New(g, tr, p, edges)
		if err != nil {
			return false
		}
		s2, _ := shortcut.New(g, tr, p, edges)
		if err := s1.Union(s2); err != nil {
			return false
		}
		for i := range s1.Edges {
			if len(s1.Edges[i]) != len(s2.Edges[i]) {
				return false
			}
			for j := range s1.Edges[i] {
				if s1.Edges[i][j] != s2.Edges[i][j] {
					return false
				}
			}
		}
		empty := shortcut.Empty(g, tr, p)
		before := s1.Measure()
		if err := s1.Union(empty); err != nil {
			return false
		}
		after := s1.Measure()
		return before.Quality == after.Quality && before.Congestion == after.Congestion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMoreEdgesNeverMoreBlocks: adding shortcut edges to a part can
// only reduce (or keep) its block count.
func TestQuickMoreEdgesNeverMoreBlocks(t *testing.T) {
	f := func(seed int64) bool {
		g, tr, p, edges := randomInstance(seed)
		s1, err := shortcut.New(g, tr, p, edges)
		if err != nil {
			return false
		}
		b1 := s1.BlockCounts()
		// Add the full tree to part 0.
		edges2 := make([][]int, len(edges))
		for i := range edges {
			edges2[i] = append([]int(nil), edges[i]...)
		}
		edges2[0] = tr.TreeEdgeIDs()
		s2, err := shortcut.New(g, tr, p, edges2)
		if err != nil {
			return false
		}
		b2 := s2.BlockCounts()
		return b2[0] <= b1[0] && b2[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickObliviousBudgetMonotone: larger budgets never raise measured
// congestion above the budget, and the auto-search result is at least as
// good as the budget-1 result.
func TestQuickObliviousBudgetMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g, tr, p, _ := randomInstance(seed)
		one := shortcut.Oblivious(g, tr, p, 1).Measure()
		_, best := shortcut.ObliviousAuto(g, tr, p)
		return best.Quality <= one.Quality && one.Congestion <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTreewidthShortcutBlocks: on random partial k-trees the block
// bound b <= foldedWidth + 3 holds for arbitrary Voronoi part counts.
func TestQuickTreewidthShortcutBlocks(t *testing.T) {
	f := func(seed int64, kRaw, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%5
		n := 30 + rng.Intn(120)
		kt := gen.PartialKTree(n, k, 0.3, rng)
		tr, err := graph.BFSTree(kt.G, 0)
		if err != nil {
			return false
		}
		np := 1 + int(partsRaw)%12
		p, err := partition.Voronoi(kt.G, np, rng)
		if err != nil {
			return false
		}
		res, err := shortcut.FromTreewidth(kt.G, tr, p, kt.Decomp)
		if err != nil {
			return false
		}
		m := res.S.Measure()
		return m.MaxBlocks <= res.FoldedWidth+3 &&
			m.Congestion <= (res.FoldedWidth+1)*(res.FoldedHeight+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

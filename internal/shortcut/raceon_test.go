//go:build race

package shortcut_test

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count pins skip under it: instrumentation inflates
// AllocsPerRun counts past the plain-build ceilings.
const raceEnabled = true

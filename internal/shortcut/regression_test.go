package shortcut_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// TestNewRejectsForeignTree: a tree of a *different* graph must be rejected
// even when its edge IDs happen to be in range. Before the identity check,
// New consulted the foreign tree's edge set and silently accepted edges
// that are not tree edges of the network's own tree.
func TestNewRejectsForeignTree(t *testing.T) {
	g1 := gen.Grid(3, 3).G
	g2 := gen.Grid(3, 3).G // same shape, different object
	tr1, err := graph.BFSTree(g1, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := graph.BFSTree(g2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.GridRows(g1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// An ID that is a tree edge of tr2 but not of tr1: accepted before the
	// identity check, must be an error now.
	foreign := -1
	for id := 0; id < g1.M(); id++ {
		if tr2.IsTreeEdge(id) && !tr1.IsTreeEdge(id) {
			foreign = id
			break
		}
	}
	if foreign == -1 {
		t.Fatal("no distinguishing edge between the two trees")
	}
	edges := make([][]int, p.NumParts())
	edges[0] = []int{foreign}
	if _, err := shortcut.New(g1, tr2, p, edges); err == nil {
		t.Fatal("accepted a tree belonging to a different graph")
	}
	// Foreign parts are equally invalid.
	p2, err := partition.GridRows(g2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shortcut.New(g1, tr1, p2, make([][]int, p2.NumParts())); err == nil {
		t.Fatal("accepted parts belonging to a different graph")
	}
}

// TestNewRejectsDuplicateEdges: duplicate edge IDs within a part's list are
// a caller bug New must surface, not silently normalize away (NewNormalized
// is the explicit opt-in for merge-style constructions).
func TestNewRejectsDuplicateEdges(t *testing.T) {
	g, tr, p := gridParts(t, 3, 3)
	id := tr.TreeEdgeIDs()[0]
	edges := make([][]int, p.NumParts())
	edges[0] = []int{id, id}
	if _, err := shortcut.New(g, tr, p, edges); err == nil {
		t.Fatal("accepted duplicate edge IDs")
	}
	s, err := shortcut.NewNormalized(g, tr, p, edges)
	if err != nil {
		t.Fatalf("NewNormalized rejected mergeable duplicates: %v", err)
	}
	if len(s.Edges[0]) != 1 {
		t.Fatalf("normalized edges %v, want one copy", s.Edges[0])
	}
}

// TestNewRejectsEmptyPart: an empty part (only constructible by hand —
// partition.New refuses them) previously flowed through to Measure, where
// its zero block count could masquerade as a perfectly-helped part.
func TestNewRejectsEmptyPart(t *testing.T) {
	g := gen.Grid(3, 3).G
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := &partition.Parts{G: g, Sets: [][]int{{0, 1}, {}}, Of: make([]int, g.N())}
	for i := range p.Of {
		p.Of[i] = -1
	}
	p.Of[0], p.Of[1] = 0, 0
	if _, err := shortcut.New(g, tr, p, make([][]int, 2)); err == nil {
		t.Fatal("accepted an empty part")
	}
}

// TestAugmentedDiameterEmptyPartErrors: the empty part's augmented diameter
// used to come back 0 — indistinguishable from a singleton part that needs
// no help. It must be an explicit error (PR 2's DistributedBFS bug class).
func TestAugmentedDiameterEmptyPartErrors(t *testing.T) {
	g := gen.Grid(3, 3).G
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := &partition.Parts{G: g, Sets: [][]int{{0, 1}, {}}, Of: make([]int, g.N())}
	for i := range p.Of {
		p.Of[i] = -1
	}
	p.Of[0], p.Of[1] = 0, 0
	// Bypass New (which now rejects the empty part) the way a hand-rolled
	// caller would.
	s := &shortcut.Shortcut{G: g, T: tr, P: p, Edges: make([][]int, 2)}
	if _, err := s.AugmentedDiameter(1); err == nil {
		t.Fatal("empty part reported a diameter instead of an error")
	}
	if _, err := s.AugmentedDiameter(7); err == nil {
		t.Fatal("out-of-range part reported a diameter instead of an error")
	}
}

// TestAugmentedDiameterDisconnectedErrors: shortcut edges that never touch
// the part leave the augmented subgraph disconnected; that must surface as
// an error, not a raw sentinel the caller can mistake for a diameter.
func TestAugmentedDiameterDisconnectedErrors(t *testing.T) {
	g := gen.Grid(3, 3).G
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(g, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	far := -1
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if tr.IsTreeEdge(id) && e.U != 0 && e.V != 0 && e.U != 1 && e.V != 1 {
			far = id
			break
		}
	}
	if far == -1 {
		t.Fatal("no tree edge away from the part")
	}
	s, err := shortcut.New(g, tr, p, [][]int{{far}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AugmentedDiameter(0); err == nil {
		t.Fatal("disconnected augmented subgraph reported a diameter")
	}
}

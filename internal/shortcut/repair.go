package shortcut

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// EventKind classifies a churn event applied to a maintained shortcut.
type EventKind int

const (
	// WeightUpdate replaces the weight of an existing edge. Weights never
	// enter the flooding fixed point (admission depends only on the tree and
	// the part family), so the shortcut is untouched.
	WeightUpdate EventKind = iota + 1
	// EdgeInsert adds a fresh non-tree edge between two live vertices. The
	// tree is unchanged, so the fixed point is unchanged; the new edge only
	// widens the pool of future replacement edges.
	EdgeInsert
	// EdgeDelete removes an edge. Deleting a non-tree edge leaves the fixed
	// point alone; deleting a tree edge triggers the repair proper — splice
	// in the best replacement edge, re-root the severed subtree, and
	// recompute admissions along the dirty path only.
	EdgeDelete
)

func (k EventKind) String() string {
	switch k {
	case WeightUpdate:
		return "weight-update"
	case EdgeInsert:
		return "edge-insert"
	case EdgeDelete:
		return "edge-delete"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one churn event. WeightUpdate and EdgeDelete address an edge by
// ID; EdgeInsert names the endpoints. W carries the (new) weight for
// WeightUpdate and EdgeInsert.
type Event struct {
	Kind EventKind
	Edge int
	U, V int
	W    float64
}

// Maintained is a shortcut kept alive under churn: the graph, tree, part
// family and congestion cap it was built for, the frozen priority ranking
// (re-ranking parts mid-stream would force a global rebuild on every event,
// defeating local repair), and the current flooding fixed-point state. All
// mutation goes through Repair, which updates the graph, the tree, and the
// admissions together.
type Maintained struct {
	G   *graph.Graph
	T   *graph.Tree
	P   *partition.Parts
	Cap int
	// Prio is the eviction ranking frozen at Maintain time. The repair
	// fixed point is always FloodFixedPoint under this ranking, even after
	// tree patches shift the parts' true block counts — that drift is
	// exactly what the quality threshold watches.
	Prio []int32
	// RebuildFactor is the quality degradation threshold: a repair whose
	// measured quality exceeds RebuildFactor times the baseline recommends
	// a full rebuild (cap re-search) to the caller.
	RebuildFactor float64

	admitted    [][]int32
	s           *Shortcut
	baseQuality int
	onRepair    []func(*RepairReport)
}

// OnRepair registers a listener invoked after every successful Repair (and
// after Reseat, with a nil report) — the invalidation hook consumers of
// the maintained shortcut subscribe to. The query-serving distance oracle
// uses it to flush cached distances when churn moves the network: any
// event may change distances (weights, connectivity) even when the
// shortcut's admissions are untouched. Listeners run synchronously, in
// registration order, on the goroutine that called Repair.
func (m *Maintained) OnRepair(fn func(*RepairReport)) {
	m.onRepair = append(m.onRepair, fn)
}

func (m *Maintained) notifyRepair(rep *RepairReport) {
	for _, fn := range m.onRepair {
		fn(rep)
	}
}

// RepairReport describes what one Repair call did.
type RepairReport struct {
	Event Event
	// DirtyVertices is the size of the dirty upward closure whose
	// admissions were recomputed (0 for events that cannot move the fixed
	// point).
	DirtyVertices int
	// RepairRounds is the modeled CONGEST cost of the repair: one round per
	// dirty vertex (the admissions re-flood climbs the dirty path one edge
	// per round) plus two rounds of detect/ack, and a single round for
	// fixed-point-preserving events.
	RepairRounds int
	// Changed reports whether any vertex's admitted set actually moved.
	Changed bool
	// TreePatched reports that a tree edge was deleted and the severed
	// subtree was re-rooted onto ReplacementEdge.
	TreePatched     bool
	ReplacementEdge int
	// Quality is the shortcut's measured quality after the event.
	Quality int
	// RebuildRecommended is set when Quality exceeds RebuildFactor times
	// the baseline quality captured at Maintain (or Reseat) time.
	RebuildRecommended bool
}

// Maintain wraps an initial flooding construction for incremental repair.
// The priority ranking is computed once (TreeBlockPriorities) and frozen;
// cap values below 1 clamp to 1 as everywhere else. A rebuildFactor at or
// below 1 selects the default threshold of 2 (quality doubled).
func Maintain(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap int, rebuildFactor float64) (*Maintained, error) {
	return MaintainPrio(g, t, p, cap, TreeBlockPriorities(t, p), rebuildFactor)
}

// MaintainPrio is Maintain under an explicit frozen ranking — the entry
// point for callers that already ran the cap search (congest.SearchCap
// computes and disseminates the ranking in-network).
func MaintainPrio(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap int, prio []int32, rebuildFactor float64) (*Maintained, error) {
	if t.G != g {
		return nil, fmt.Errorf("shortcut: maintained tree belongs to a different graph")
	}
	if p.G != g {
		return nil, fmt.Errorf("shortcut: maintained parts belong to a different graph")
	}
	if err := ValidPriorities(prio, p.NumParts()); err != nil {
		return nil, err
	}
	if prio == nil {
		prio = identityRanking(p.NumParts())
	}
	if cap < 1 {
		cap = 1
	}
	if rebuildFactor <= 1 {
		rebuildFactor = 2
	}
	m := &Maintained{G: g, T: t, P: p, Cap: cap, Prio: prio, RebuildFactor: rebuildFactor}
	m.admitted = FloodFixedPoint(g, t, p, cap, prio)
	if err := m.reassemble(); err != nil {
		return nil, err
	}
	m.baseQuality = m.s.Measure().Quality
	return m, nil
}

// Shortcut returns the current shortcut (valid for the current tree).
func (m *Maintained) Shortcut() *Shortcut { return m.s }

// Quality returns the current measured quality.
func (m *Maintained) Quality() int { return m.s.Measure().Quality }

// BaseQuality returns the baseline quality the rebuild threshold compares
// against.
func (m *Maintained) BaseQuality() int { return m.baseQuality }

// Admitted returns the current fixed-point state (aliased, not copied):
// admitted[v] lists, in rank space, the parts admitted over v's parent
// edge. Exposed so tests can compare against a fresh FloodFixedPoint.
func (m *Maintained) Admitted() [][]int32 { return m.admitted }

// Reseat replaces the maintained state after a caller-driven full rebuild
// (e.g. a fresh cap search chose a new cap and ranking) and resets the
// baseline quality the rebuild threshold compares against.
func (m *Maintained) Reseat(cap int, prio []int32) error {
	if err := ValidPriorities(prio, m.P.NumParts()); err != nil {
		return err
	}
	if prio == nil {
		prio = identityRanking(m.P.NumParts())
	}
	if cap < 1 {
		cap = 1
	}
	m.Cap, m.Prio = cap, prio
	m.admitted = FloodFixedPoint(m.G, m.T, m.P, cap, prio)
	if err := m.reassemble(); err != nil {
		return err
	}
	m.baseQuality = m.s.Measure().Quality
	m.notifyRepair(nil)
	return nil
}

func (m *Maintained) reassemble() error {
	s, err := FromFloodState(m.G, m.T, m.P, m.admitted, m.Prio)
	if err != nil {
		return fmt.Errorf("shortcut: reassembling maintained shortcut: %w", err)
	}
	m.s = s
	return nil
}

// Repair applies one churn event and restores the invariant that the
// maintained admissions equal FloodFixedPoint over the (possibly patched)
// tree under the frozen ranking. Fixed-point-preserving events (weight
// updates, inserts, non-tree deletes) mutate the graph and return in O(1);
// a tree-edge delete finds the lowest-ID replacement edge crossing the
// severed subtree's cut, re-roots the subtree at the replacement's inner
// endpoint, and recomputes admissions only over the dirty upward closure —
// the vertices whose child lists changed, plus their ancestors.
//
// A tree-edge delete with no replacement edge would disconnect the graph;
// Repair returns an error before mutating anything, so the caller can skip
// the event and the maintained state stays consistent.
func (m *Maintained) Repair(ev Event) (*RepairReport, error) {
	rep := &RepairReport{Event: ev, ReplacementEdge: -1}
	switch ev.Kind {
	case WeightUpdate:
		if err := m.checkEdge(ev.Edge); err != nil {
			return nil, err
		}
		m.G.SetWeight(ev.Edge, ev.W)
		rep.RepairRounds = 1
	case EdgeInsert:
		n := m.G.N()
		if ev.U < 0 || ev.U >= n || ev.V < 0 || ev.V >= n || ev.U == ev.V {
			return nil, fmt.Errorf("shortcut: repair insert (%d,%d) outside vertex range [0,%d)", ev.U, ev.V, n)
		}
		m.G.AddEdge(ev.U, ev.V, ev.W)
		rep.RepairRounds = 1
	case EdgeDelete:
		if err := m.checkEdge(ev.Edge); err != nil {
			return nil, err
		}
		if !m.T.IsTreeEdge(ev.Edge) {
			m.G.RemoveEdge(ev.Edge)
			rep.RepairRounds = 1
			break
		}
		if err := m.repairTreeDelete(ev, rep); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("shortcut: repair: unknown event kind %v", ev.Kind)
	}
	rep.Quality = m.s.Measure().Quality
	rep.RebuildRecommended = float64(rep.Quality) > m.RebuildFactor*float64(m.baseQuality)
	m.notifyRepair(rep)
	return rep, nil
}

func (m *Maintained) checkEdge(id int) error {
	if id < 0 || id >= m.G.M() {
		return fmt.Errorf("shortcut: repair edge %d outside [0,%d)", id, m.G.M())
	}
	if m.G.EdgeRemoved(id) {
		return fmt.Errorf("shortcut: repair edge %d already removed", id)
	}
	return nil
}

// repairTreeDelete is the tree-patching path of Repair. All validation and
// the replacement search happen before the first mutation.
func (m *Maintained) repairTreeDelete(ev Event, rep *RepairReport) error {
	g, t := m.G, m.T
	e := g.Edge(ev.Edge)
	// The cut child is the endpoint whose parent edge is the deleted edge.
	c := e.U
	if t.ParentEdge[e.V] == ev.Edge {
		c = e.V
	}
	oldParent := t.Parent[c]

	// Mark the severed subtree.
	inSub := make([]bool, g.N())
	stack := []int{c}
	inSub[c] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range t.Children[v] {
			inSub[ch] = true
			stack = append(stack, ch)
		}
	}

	// Lowest-ID live edge crossing the cut, the deleted edge excluded.
	repl := -1
	for id := 0; id < g.M(); id++ {
		if id == ev.Edge || g.EdgeRemoved(id) {
			continue
		}
		f := g.Edge(id)
		if inSub[f.U] != inSub[f.V] {
			repl = id
			break
		}
	}
	if repl == -1 {
		return fmt.Errorf("shortcut: deleting tree edge %d disconnects the graph (no replacement edge crosses the cut)", ev.Edge)
	}
	f := g.Edge(repl)
	x, y := f.U, f.V // x inside the subtree, y outside
	if !inSub[x] {
		x, y = y, x
	}

	// Patch: remove the edge, re-root the subtree at x by reversing the
	// parent path x -> ... -> c, and hang x off y via the replacement edge.
	g.RemoveEdge(ev.Edge)
	parent := append([]int(nil), t.Parent...)
	parentEdge := append([]int(nil), t.ParentEdge...)
	path := []int{x}
	for v := x; v != c; v = t.Parent[v] {
		path = append(path, t.Parent[v])
	}
	for i := len(path) - 1; i > 0; i-- {
		parent[path[i]] = path[i-1]
		parentEdge[path[i]] = t.ParentEdge[path[i-1]]
	}
	parent[x], parentEdge[x] = y, repl
	newT, err := graph.TreeFromParents(g, t.Root, parent, parentEdge)
	if err != nil {
		return fmt.Errorf("shortcut: repatching tree after deleting edge %d: %w", ev.Edge, err)
	}

	// Dirty closure: every vertex whose child list changed (the reversed
	// path, the old attachment, the new attachment), closed upward under
	// the new tree — admission changes only propagate parentward.
	dirty := make([]bool, g.N())
	seed := func(v int) {
		for v != -1 && !dirty[v] {
			dirty[v] = true
			v = newT.Parent[v]
		}
	}
	for _, v := range path {
		seed(v)
	}
	seed(oldParent)
	seed(y)

	// Recompute admissions children-first over the dirty closure, exactly
	// the FloodFixedPoint rule per vertex. Reverse new BFS order visits
	// children before parents.
	changed := false
	count := 0
	seen := g.AcquireScratch()
	defer g.ReleaseScratch(seen)
	var present []int32
	for oi := g.N() - 1; oi >= 0; oi-- {
		v := newT.Order[oi]
		if !dirty[v] {
			continue
		}
		count++
		var next []int32
		if newT.ParentEdge[v] != -1 {
			present = present[:0]
			seen.Reset()
			if pi := m.P.Of[v]; pi != -1 {
				r := m.Prio[pi]
				seen.Visit(int(r))
				present = append(present, r)
			}
			for _, ch := range newT.Children[v] {
				for _, r := range m.admitted[ch] {
					if seen.Visit(int(r)) {
						present = append(present, r)
					}
				}
			}
			if len(present) > 0 {
				sort.Slice(present, func(a, b int) bool { return present[a] < present[b] })
				if len(present) > m.Cap {
					present = present[:m.Cap]
				}
				next = append([]int32(nil), present...)
			}
		}
		if !ranksEqual(m.admitted[v], next) {
			changed = true
		}
		m.admitted[v] = next
	}

	m.T = newT
	if err := m.reassemble(); err != nil {
		return err
	}
	rep.TreePatched = true
	rep.ReplacementEdge = repl
	rep.DirtyVertices = count
	rep.RepairRounds = count + 2
	rep.Changed = changed
	return nil
}

// identityRanking is the static by-ID order as an explicit permutation, so
// repair can index the frozen ranking unconditionally.
func identityRanking(numParts int) []int32 {
	prio := make([]int32, numParts)
	for i := range prio {
		prio[i] = int32(i)
	}
	return prio
}

func ranksEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package shortcut_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// checkOracle verifies the maintained state against a full rebuild: the
// incremental admissions must equal a fresh FloodFixedPoint over the
// current (possibly patched) tree under the frozen ranking, and the
// assembled shortcut must equal the from-scratch construction.
func checkOracle(t *testing.T, m *shortcut.Maintained) {
	t.Helper()
	want := shortcut.FloodFixedPoint(m.G, m.T, m.P, m.Cap, m.Prio)
	got := m.Admitted()
	for v := range want {
		if len(want[v]) != len(got[v]) {
			t.Fatalf("vertex %d: admitted %v, oracle %v", v, got[v], want[v])
		}
		for i := range want[v] {
			if want[v][i] != got[v][i] {
				t.Fatalf("vertex %d: admitted %v, oracle %v", v, got[v], want[v])
			}
		}
	}
	ws := shortcut.ConstructPrio(m.G, m.T, m.P, m.Cap, m.Prio)
	gs := m.Shortcut()
	for i := range ws.Edges {
		if len(ws.Edges[i]) != len(gs.Edges[i]) {
			t.Fatalf("part %d: shortcut edges %v, oracle %v", i, gs.Edges[i], ws.Edges[i])
		}
		for j := range ws.Edges[i] {
			if ws.Edges[i][j] != gs.Edges[i][j] {
				t.Fatalf("part %d: shortcut edges %v, oracle %v", i, gs.Edges[i], ws.Edges[i])
			}
		}
	}
}

func TestRepairMatchesFixedPointOracle(t *testing.T) {
	g, tr, p := gridParts(t, 8, 8)
	m, err := shortcut.Maintain(g, tr, p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkOracle(t, m)
	rng := rand.New(rand.NewSource(18))
	deletes, patches := 0, 0
	for step := 0; step < 200; step++ {
		var ev shortcut.Event
		switch rng.Intn(4) {
		case 0: // weight update on a random live edge
			id := rng.Intn(g.M())
			if g.EdgeRemoved(id) {
				continue
			}
			ev = shortcut.Event{Kind: shortcut.WeightUpdate, Edge: id, W: rng.Float64()}
		case 1: // insert a fresh edge
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v || g.HasEdge(u, v) {
				continue
			}
			ev = shortcut.Event{Kind: shortcut.EdgeInsert, U: u, V: v, W: rng.Float64()}
		default: // delete a random live edge
			id := rng.Intn(g.M())
			if g.EdgeRemoved(id) {
				continue
			}
			ev = shortcut.Event{Kind: shortcut.EdgeDelete, Edge: id}
		}
		rep, err := m.Repair(ev)
		if err != nil {
			// The only lawful failure is a disconnecting tree-edge delete,
			// refused before any mutation.
			if ev.Kind != shortcut.EdgeDelete {
				t.Fatalf("step %d: %v", step, err)
			}
			if g.EdgeRemoved(ev.Edge) {
				t.Fatalf("step %d: refused delete still removed edge %d", step, ev.Edge)
			}
			continue
		}
		if ev.Kind == shortcut.EdgeDelete {
			deletes++
			if !g.EdgeRemoved(ev.Edge) {
				t.Fatalf("step %d: delete left edge %d live", step, ev.Edge)
			}
			if rep.TreePatched {
				patches++
				if rep.ReplacementEdge < 0 || g.EdgeRemoved(rep.ReplacementEdge) {
					t.Fatalf("step %d: bad replacement edge %d", step, rep.ReplacementEdge)
				}
				if !m.T.IsTreeEdge(rep.ReplacementEdge) {
					t.Fatalf("step %d: replacement edge %d not in patched tree", step, rep.ReplacementEdge)
				}
				if rep.RepairRounds != rep.DirtyVertices+2 {
					t.Fatalf("step %d: repair rounds %d for %d dirty vertices", step, rep.RepairRounds, rep.DirtyVertices)
				}
				if rep.DirtyVertices >= g.N() {
					t.Fatalf("step %d: dirty closure %d not smaller than n=%d", step, rep.DirtyVertices, g.N())
				}
			}
		}
		checkOracle(t, m)
	}
	if deletes == 0 || patches == 0 {
		t.Fatalf("churn sequence exercised %d deletes, %d tree patches; want both > 0", deletes, patches)
	}
}

func TestRepairTreeDeleteReroots(t *testing.T) {
	// 4-cycle: tree is 0-1, 0-3, 1-2. Deleting tree edge 1-2 must re-root
	// {2} onto the replacement edge 2-3.
	g := gen.Cycle(4)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(g, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := shortcut.Maintain(g, tr, p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := tr.ParentEdge[2]
	rep, err := m.Repair(shortcut.Event{Kind: shortcut.EdgeDelete, Edge: id})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TreePatched {
		t.Fatalf("tree-edge delete did not patch the tree: %+v", rep)
	}
	if m.T.Parent[2] != 3 {
		t.Fatalf("vertex 2 re-rooted onto %d, want 3", m.T.Parent[2])
	}
	if got := g.Edge(rep.ReplacementEdge); !(got.U == 2 && got.V == 3 || got.U == 3 && got.V == 2) {
		t.Fatalf("replacement edge %d joins %v, want {2,3}", rep.ReplacementEdge, got)
	}
	checkOracle(t, m)
}

func TestRepairRefusesDisconnect(t *testing.T) {
	// A tree has no replacement for any of its edges.
	g := gen.Path(5)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(g, [][]int{{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := shortcut.Maintain(g, tr, p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Quality()
	if _, err := m.Repair(shortcut.Event{Kind: shortcut.EdgeDelete, Edge: tr.ParentEdge[3]}); err == nil {
		t.Fatal("disconnecting delete accepted")
	}
	if g.EdgeRemoved(tr.ParentEdge[3]) {
		t.Fatal("refused delete mutated the graph")
	}
	if m.Quality() != before {
		t.Fatal("refused delete mutated the maintained shortcut")
	}
	checkOracle(t, m)
}

func TestRepairRebuildThreshold(t *testing.T) {
	g, tr, p := gridParts(t, 4, 4)
	m, err := shortcut.Maintain(g, tr, p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.RebuildFactor != 2 {
		t.Fatalf("default rebuild factor %v, want 2", m.RebuildFactor)
	}
	// Quality is unchanged by a weight update, so the recommendation is a
	// pure function of the threshold.
	m.RebuildFactor = 0.5
	rep, err := m.Repair(shortcut.Event{Kind: shortcut.WeightUpdate, Edge: 0, W: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RebuildRecommended {
		t.Fatalf("quality %d vs base %d under factor 0.5: rebuild not recommended", rep.Quality, m.BaseQuality())
	}
	m.RebuildFactor = 10
	rep, err = m.Repair(shortcut.Event{Kind: shortcut.WeightUpdate, Edge: 0, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RebuildRecommended {
		t.Fatalf("quality %d vs base %d under factor 10: spurious rebuild recommendation", rep.Quality, m.BaseQuality())
	}
	// Reseat resets the baseline.
	if err := m.Reseat(2, nil); err != nil {
		t.Fatal(err)
	}
	if m.BaseQuality() != m.Quality() {
		t.Fatalf("reseat left baseline %d != quality %d", m.BaseQuality(), m.Quality())
	}
	checkOracle(t, m)
}

func TestRepairRejectsBadEvents(t *testing.T) {
	g, tr, p := gridParts(t, 3, 3)
	m, err := shortcut.Maintain(g, tr, p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := []shortcut.Event{
		{Kind: shortcut.WeightUpdate, Edge: -1},
		{Kind: shortcut.WeightUpdate, Edge: g.M()},
		{Kind: shortcut.EdgeDelete, Edge: g.M() + 3},
		{Kind: shortcut.EdgeInsert, U: 0, V: 0},
		{Kind: shortcut.EdgeInsert, U: -1, V: 2},
		{Kind: shortcut.EdgeInsert, U: 0, V: g.N()},
		{Kind: shortcut.EventKind(99), Edge: 0},
	}
	for _, ev := range bad {
		if _, err := m.Repair(ev); err == nil {
			t.Errorf("event %+v accepted", ev)
		}
	}
	// Double delete: first succeeds, second is refused.
	nonTree := -1
	for id := 0; id < g.M(); id++ {
		if !tr.IsTreeEdge(id) {
			nonTree = id
			break
		}
	}
	if _, err := m.Repair(shortcut.Event{Kind: shortcut.EdgeDelete, Edge: nonTree}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Repair(shortcut.Event{Kind: shortcut.EdgeDelete, Edge: nonTree}); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := m.Repair(shortcut.Event{Kind: shortcut.WeightUpdate, Edge: nonTree, W: 1}); err == nil {
		t.Error("weight update on removed edge accepted")
	}
	checkOracle(t, m)
}

// OnRepair listeners — the invalidation hook the query-serving distance
// oracle subscribes to — must fire once per successful Repair (with the
// report) and once per Reseat (with nil), in registration order, and must
// not fire for refused events.
func TestOnRepairListeners(t *testing.T) {
	g, tr, p := gridParts(t, 6, 6)
	m, err := shortcut.Maintain(g, tr, p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var reports []*shortcut.RepairReport
	m.OnRepair(func(rep *shortcut.RepairReport) { order = append(order, 1); reports = append(reports, rep) })
	m.OnRepair(func(rep *shortcut.RepairReport) { order = append(order, 2) })
	rep, err := m.Repair(shortcut.Event{Kind: shortcut.WeightUpdate, Edge: 0, W: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0] != rep {
		t.Fatalf("listener saw %d reports, want exactly the returned one", len(reports))
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("listener order %v, want [1 2]", order)
	}
	if _, err := m.Repair(shortcut.Event{Kind: shortcut.EdgeDelete, Edge: g.M() + 7}); err == nil {
		t.Fatal("bad event accepted")
	}
	if len(reports) != 1 {
		t.Error("listener fired for a refused event")
	}
	if err := m.Reseat(m.Cap, m.Prio); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[1] != nil {
		t.Fatalf("Reseat notification missing or non-nil: %d reports", len(reports))
	}
}

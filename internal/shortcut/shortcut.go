// Package shortcut implements tree-restricted low-congestion shortcuts
// (paper Definitions 9-13): the Shortcut object, exact quality measurement
// (congestion, block parameter, quality q(d) = b·d + c), and two
// constructors — the oblivious tree-claiming construction in the spirit of
// [HIZ16a] (uses no structural knowledge) and the treewidth-witness
// construction realizing Theorem 5 ([HIZ16b]).
package shortcut

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Shortcut assigns each part a set of tree edges (its Hᵢ). All edges must
// belong to the spanning tree T (Definition 10: T-restricted).
type Shortcut struct {
	G     *graph.Graph
	T     *graph.Tree
	P     *partition.Parts
	Edges [][]int // per part: sorted tree edge IDs
}

// New wraps and validates a shortcut assignment: every assigned edge must be
// an edge of T, each part's list is deduplicated and sorted.
func New(g *graph.Graph, t *graph.Tree, p *partition.Parts, edges [][]int) (*Shortcut, error) {
	if len(edges) != p.NumParts() {
		return nil, fmt.Errorf("shortcut: %d edge sets for %d parts", len(edges), p.NumParts())
	}
	s := &Shortcut{G: g, T: t, P: p, Edges: make([][]int, len(edges))}
	for i, ids := range edges {
		dedup := make(map[int]bool, len(ids))
		for _, id := range ids {
			if id < 0 || id >= g.M() {
				return nil, fmt.Errorf("shortcut: part %d has invalid edge %d", i, id)
			}
			if !t.IsTreeEdge(id) {
				return nil, fmt.Errorf("shortcut: part %d edge %d is not a tree edge", i, id)
			}
			dedup[id] = true
		}
		s.Edges[i] = make([]int, 0, len(dedup))
		for id := range dedup {
			s.Edges[i] = append(s.Edges[i], id)
		}
		sort.Ints(s.Edges[i])
	}
	return s, nil
}

// Empty returns the all-empty shortcut (every part gets no help).
func Empty(g *graph.Graph, t *graph.Tree, p *partition.Parts) *Shortcut {
	s, err := New(g, t, p, make([][]int, p.NumParts()))
	if err != nil {
		panic(fmt.Sprintf("shortcut.Empty: %v", err))
	}
	return s
}

// Measurement summarizes a shortcut's quality (Definitions 11-13).
type Measurement struct {
	Congestion   int   // max over edges of #parts using the edge
	MaxBlocks    int   // block parameter b: max over parts of block count
	Blocks       []int // per part
	TreeDiameter int   // 2 * height of T (upper bound used for d_T)
	Quality      int   // b * d_T + c
}

// Measure computes congestion, block parameters, and quality exactly.
func (s *Shortcut) Measure() Measurement {
	m := Measurement{TreeDiameter: 2 * s.T.Height()}
	if m.TreeDiameter == 0 {
		m.TreeDiameter = 1
	}
	use := make(map[int]int)
	for _, ids := range s.Edges {
		for _, id := range ids {
			use[id]++
		}
	}
	for _, c := range use {
		if c > m.Congestion {
			m.Congestion = c
		}
	}
	m.Blocks = s.BlockCounts()
	for _, b := range m.Blocks {
		if b > m.MaxBlocks {
			m.MaxBlocks = b
		}
	}
	m.Quality = m.MaxBlocks*m.TreeDiameter + m.Congestion
	return m
}

// BlockCounts returns, per part, the number of block components: connected
// components of (V, Hᵢ) containing at least one vertex of the part
// (Definition 12; a part vertex not covered by Hᵢ is a singleton block).
func (s *Shortcut) BlockCounts() []int {
	out := make([]int, s.P.NumParts())
	for i, ids := range s.Edges {
		uf := graph.NewUnionFind(s.G.N())
		for _, id := range ids {
			e := s.G.Edge(id)
			uf.Union(e.U, e.V)
		}
		reps := make(map[int]bool)
		for _, v := range s.P.Sets[i] {
			reps[uf.Find(v)] = true
		}
		out[i] = len(reps)
	}
	return out
}

// AugmentedDiameter returns the hop diameter of G[Pᵢ] + Hᵢ — the subgraph
// induced by the part plus its shortcut edges (with their endpoints). The
// framework's promise is that this is O(bᵢ · d_T).
func (s *Shortcut) AugmentedDiameter(i int) int {
	in := make(map[int]bool)
	for _, v := range s.P.Sets[i] {
		in[v] = true
	}
	// Collect the augmented vertex set.
	for _, id := range s.Edges[i] {
		e := s.G.Edge(id)
		in[e.U] = true
		in[e.V] = true
	}
	verts := make([]int, 0, len(in))
	for v := range in {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	idx := make(map[int]int, len(verts))
	for li, v := range verts {
		idx[v] = li
	}
	aug := graph.New(len(verts))
	// Induced part edges.
	partIn := make(map[int]bool, len(s.P.Sets[i]))
	for _, v := range s.P.Sets[i] {
		partIn[v] = true
	}
	for id := 0; id < s.G.M(); id++ {
		e := s.G.Edge(id)
		if partIn[e.U] && partIn[e.V] {
			aug.AddEdge(idx[e.U], idx[e.V], 1)
		}
	}
	for _, id := range s.Edges[i] {
		e := s.G.Edge(id)
		aug.AddEdge(idx[e.U], idx[e.V], 1)
	}
	d := graph.Diameter(aug)
	return d
}

// Union merges another shortcut assignment (same G, T, P) into s,
// part-by-part. Used to combine local and global shortcuts.
func (s *Shortcut) Union(other *Shortcut) error {
	if other.P.NumParts() != s.P.NumParts() {
		return fmt.Errorf("shortcut: union over different part families")
	}
	for i := range s.Edges {
		merged := make(map[int]bool, len(s.Edges[i])+len(other.Edges[i]))
		for _, id := range s.Edges[i] {
			merged[id] = true
		}
		for _, id := range other.Edges[i] {
			merged[id] = true
		}
		s.Edges[i] = s.Edges[i][:0]
		for id := range merged {
			s.Edges[i] = append(s.Edges[i], id)
		}
		sort.Ints(s.Edges[i])
	}
	return nil
}

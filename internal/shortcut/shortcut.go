// Package shortcut implements tree-restricted low-congestion shortcuts
// (paper Definitions 9-13): the Shortcut object, exact quality measurement
// (congestion, block parameter, quality q(d) = b·d + c), and two
// constructors — the oblivious tree-claiming construction in the spirit of
// [HIZ16a] (uses no structural knowledge) and the treewidth-witness
// construction realizing Theorem 5 ([HIZ16b]).
//
// The measurement paths are dense: all per-part accounting runs over
// epoch-stamped scratch slices (graph.Scratch) and a single reused
// union-find forest, so measuring a shortcut allocates O(parts) memory
// rather than O(parts · n) map churn.
package shortcut

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Shortcut assigns each part a set of tree edges (its Hᵢ). All edges must
// belong to the spanning tree T (Definition 10: T-restricted).
type Shortcut struct {
	G     *graph.Graph
	T     *graph.Tree
	P     *partition.Parts
	Edges [][]int // per part: sorted tree edge IDs
}

// New wraps and validates a shortcut assignment: t and p must belong to g
// (by identity — a tree of a different graph would silently interpret g's
// edge IDs against the wrong edge set), every assigned edge must be an edge
// of T, no part may be empty, and each part's list must be free of
// duplicates (it is returned sorted). Constructions that legitimately merge
// overlapping edge sets should use NewNormalized.
func New(g *graph.Graph, t *graph.Tree, p *partition.Parts, edges [][]int) (*Shortcut, error) {
	return build(g, t, p, edges, false)
}

// NewNormalized is New for merge-style constructions: duplicate edge IDs
// within a part's list are deduplicated silently instead of rejected. All
// other validation (graph/tree/part identity, tree membership, non-empty
// parts) is identical to New.
func NewNormalized(g *graph.Graph, t *graph.Tree, p *partition.Parts, edges [][]int) (*Shortcut, error) {
	return build(g, t, p, edges, true)
}

func build(g *graph.Graph, t *graph.Tree, p *partition.Parts, edges [][]int, dedup bool) (*Shortcut, error) {
	if t.G != g {
		return nil, fmt.Errorf("shortcut: tree belongs to a different graph")
	}
	if p.G != g {
		return nil, fmt.Errorf("shortcut: parts belong to a different graph")
	}
	if len(edges) != p.NumParts() {
		return nil, fmt.Errorf("shortcut: %d edge sets for %d parts", len(edges), p.NumParts())
	}
	for i, set := range p.Sets {
		if len(set) == 0 {
			return nil, fmt.Errorf("shortcut: part %d is empty", i)
		}
	}
	s := &Shortcut{G: g, T: t, P: p, Edges: make([][]int, len(edges))}
	for i, ids := range edges {
		for _, id := range ids {
			if id < 0 || id >= g.M() {
				return nil, fmt.Errorf("shortcut: part %d has invalid edge %d", i, id)
			}
			if !t.IsTreeEdge(id) {
				return nil, fmt.Errorf("shortcut: part %d edge %d is not a tree edge", i, id)
			}
		}
		out := sortedDedup(ids)
		if !dedup && len(out) != len(ids) {
			return nil, fmt.Errorf("shortcut: part %d has %d duplicate edge IDs", i, len(ids)-len(out))
		}
		s.Edges[i] = out
	}
	return s, nil
}

// sortedDedup returns a fresh sorted slice of the distinct values of ids.
func sortedDedup(ids []int) []int {
	out := make([]int, len(ids))
	copy(out, ids)
	sort.Ints(out)
	w := 0
	for r, id := range out {
		if r == 0 || id != out[w-1] {
			out[w] = id
			w++
		}
	}
	return out[:w]
}

// Empty returns the all-empty shortcut (every part gets no help).
func Empty(g *graph.Graph, t *graph.Tree, p *partition.Parts) *Shortcut {
	s, err := New(g, t, p, make([][]int, p.NumParts()))
	if err != nil {
		panic(fmt.Sprintf("shortcut.Empty: %v", err))
	}
	return s
}

// Measurement summarizes a shortcut's quality (Definitions 11-13).
type Measurement struct {
	Congestion   int   // max over edges of #parts using the edge
	MaxBlocks    int   // block parameter b: max over parts of block count
	Blocks       []int // per part
	TreeDiameter int   // 2 * height of T (upper bound used for d_T)
	Quality      int   // b * d_T + c
}

// Measure computes congestion, block parameters, and quality exactly.
func (s *Shortcut) Measure() Measurement {
	m := Measurement{TreeDiameter: 2 * s.T.Height()}
	if m.TreeDiameter == 0 {
		m.TreeDiameter = 1
	}
	use := s.G.AcquireScratch() // edge ID -> #parts using it
	for _, ids := range s.Edges {
		for _, id := range ids {
			if c := int(use.Add(id, 1)); c > m.Congestion {
				m.Congestion = c
			}
		}
	}
	s.G.ReleaseScratch(use)
	m.Blocks = s.BlockCounts()
	for _, b := range m.Blocks {
		if b > m.MaxBlocks {
			m.MaxBlocks = b
		}
	}
	m.Quality = m.MaxBlocks*m.TreeDiameter + m.Congestion
	return m
}

// BlockCounts returns, per part, the number of block components: connected
// components of (V, Hᵢ) containing at least one vertex of the part
// (Definition 12; a part vertex not covered by Hᵢ is a singleton block).
func (s *Shortcut) BlockCounts() []int {
	out := make([]int, s.P.NumParts())
	// The union-find runs over a local index space of the vertices the
	// part's shortcut edges actually touch, so the whole count is
	// O(Σ|Hᵢ| + Σ|Pᵢ|) — a per-part Reset over all n vertices made this
	// quadratic in the part count, which the million-node cap search
	// cannot afford. An untouched part member is its own singleton block
	// and is counted directly by its global vertex; a touched local root
	// is counted by its (touched, hence disjoint) global vertex.
	loc := s.G.AcquireScratch() // global vertex -> local touched index
	defer s.G.ReleaseScratch(loc)
	reps := s.G.AcquireScratch()
	defer s.G.ReleaseScratch(reps)
	var touched []int
	uf := graph.NewUnionFind(0)
	for i, ids := range s.Edges {
		loc.Reset()
		touched = touched[:0]
		for _, id := range ids {
			e := s.G.Edge(id)
			if !loc.Has(e.U) {
				loc.Set(e.U, int32(len(touched)))
				touched = append(touched, e.U)
			}
			if !loc.Has(e.V) {
				loc.Set(e.V, int32(len(touched)))
				touched = append(touched, e.V)
			}
		}
		uf.Reset(len(touched))
		for _, id := range ids {
			e := s.G.Edge(id)
			uf.Union(int(loc.GetOr(e.U, -1)), int(loc.GetOr(e.V, -1)))
		}
		reps.Reset()
		distinct := 0
		for _, v := range s.P.Sets[i] {
			r := v
			if loc.Has(v) {
				r = touched[uf.Find(int(loc.GetOr(v, -1)))]
			}
			if reps.Visit(r) {
				distinct++
			}
		}
		out[i] = distinct
	}
	return out
}

// BlockTops returns, per vertex, the sorted list of parts for which the
// vertex is the topmost point of a block of (V, Hᵢ) — the per-vertex
// decomposition of BlockCounts into locally decidable indicators. A vertex
// v tops a block of part i iff i is absent from v's own admitted set (its
// parent edge is not in Hᵢ, so no H-edge continues upward) while either a
// child admitted i (v closes one or more upward chains) or v is a member
// of part i (an uncovered member is its own singleton block). Every block
// has exactly one top, so for assignments whose H-components all touch
// their part — true for the flooding and claiming constructions, whose
// admitted chains grow upward from part vertices — the per-part sums of
// these indicators equal BlockCounts; the pipelined block-count
// convergecast of the cap search validates exactly that after streaming
// the indicators to the root.
//
// Each indicator depends only on state the construction protocol already
// holds at v (its own forwarded set and its children's admitted sets), so
// a deployed network computes BlockTops with zero extra communication.
func (s *Shortcut) BlockTops() [][]int32 {
	n := s.G.N()
	t := s.T
	// admitted[v]: parts whose shortcut contains v's parent edge;
	// fromChild[v]: parts admitted by at least one child of v. Iterating
	// parts in ascending order keeps both lists sorted.
	admitted := make([][]int32, n)
	fromChild := make([][]int32, n)
	for i, ids := range s.Edges {
		for _, id := range ids {
			e := s.G.Edge(id)
			child, parent := e.U, e.V
			if t.ParentEdge[child] != id {
				child, parent = e.V, e.U
			}
			admitted[child] = append(admitted[child], int32(i))
			if l := fromChild[parent]; len(l) == 0 || l[len(l)-1] != int32(i) {
				fromChild[parent] = append(fromChild[parent], int32(i))
			}
		}
	}
	tops := make([][]int32, n)
	for v := 0; v < n; v++ {
		own := int32(-1)
		if pi := s.P.Of[v]; pi != -1 {
			own = int32(pi)
		}
		adm := admitted[v]
		ai := 0
		inAdmitted := func(i int32) bool {
			for ai < len(adm) && adm[ai] < i {
				ai++
			}
			return ai < len(adm) && adm[ai] == i
		}
		// Merge {own} into the sorted fromChild list, skipping admitted
		// parts; candidates arrive in ascending order so inAdmitted's
		// cursor advances monotonically.
		ownDone := own == -1
		for _, i := range fromChild[v] {
			if !ownDone && own < i {
				if !inAdmitted(own) {
					tops[v] = append(tops[v], own)
				}
				ownDone = true
			}
			if !ownDone && own == i {
				ownDone = true
			}
			if !inAdmitted(i) {
				tops[v] = append(tops[v], i)
			}
		}
		if !ownDone && !inAdmitted(own) {
			tops[v] = append(tops[v], own)
		}
	}
	return tops
}

// AugmentedDiameter returns the hop diameter of G[Pᵢ] + Hᵢ — the subgraph
// induced by the part plus its shortcut edges (with their endpoints). The
// framework's promise is that this is O(bᵢ · d_T).
//
// An empty part or a disconnected augmented subgraph (shortcut edges that
// never touch the part, or a part that was built unchecked and is itself
// disconnected) is an explicit error: before this check the empty case
// returned diameter 0, masquerading as a perfectly-helped part.
func (s *Shortcut) AugmentedDiameter(i int) (int, error) {
	aug, _, err := s.augmentedSubgraph(i)
	if err != nil {
		return 0, err
	}
	d := graph.Diameter(aug)
	if d < 0 {
		return 0, fmt.Errorf("shortcut: augmented subgraph of part %d is disconnected: %w", i, graph.ErrDisconnected)
	}
	return d, nil
}

// AugmentedEcc returns the hop eccentricity of part i's minimum vertex in
// the augmented subgraph G[Pᵢ] + Hᵢ. This is the cap search's per-part
// quality probe: one BFS instead of AugmentedDiameter's all-pairs sweep,
// and ecc ≤ diameter ≤ 2·ecc, so it tracks the quantity the framework
// bounds while staying cheap enough to evaluate per doubling guess. The
// same empty-part and disconnection cases are explicit errors.
//
// Unlike AugmentedDiameter, the probe never materializes a *graph.Graph:
// the cap search evaluates it parts × guesses times, and per-probe
// adjacency-list construction dominated the whole search at scale. It runs
// BFS over a flat local CSR assembled with one counting pass instead.
func (s *Shortcut) AugmentedEcc(i int) (int, error) {
	if i < 0 || i >= s.P.NumParts() {
		return 0, fmt.Errorf("shortcut: part %d out of range for %d parts", i, s.P.NumParts())
	}
	if len(s.P.Sets[i]) == 0 {
		return 0, fmt.Errorf("shortcut: part %d is empty, augmented diameter undefined", i)
	}
	g := s.G
	in := g.AcquireScratch() // vertex -> local index
	defer g.ReleaseScratch(in)
	partIn := g.AcquireScratch()
	defer g.ReleaseScratch(partIn)
	verts := make([]int, 0, len(s.P.Sets[i])+2*len(s.Edges[i]))
	for _, v := range s.P.Sets[i] {
		if in.Visit(v) {
			verts = append(verts, v)
		}
		partIn.Visit(v)
	}
	numPart := len(verts)
	for _, id := range s.Edges[i] {
		e := g.Edge(id)
		if in.Visit(e.U) {
			verts = append(verts, e.U)
		}
		if in.Visit(e.V) {
			verts = append(verts, e.V)
		}
	}
	for li, v := range verts {
		in.Set(v, int32(li))
	}
	// Local CSR: count arc slots (induced part arcs at both endpoints plus
	// both directions of each shortcut edge), prefix-sum, fill.
	nl := len(verts)
	off := make([]int32, nl+1)
	for _, v := range verts[:numPart] {
		li := in.GetOr(v, -1)
		for _, a := range g.Adj(v) {
			if partIn.Has(a.To) {
				off[li+1]++
			}
		}
	}
	for _, id := range s.Edges[i] {
		e := g.Edge(id)
		off[in.GetOr(e.U, -1)+1]++
		off[in.GetOr(e.V, -1)+1]++
	}
	for li := 0; li < nl; li++ {
		off[li+1] += off[li]
	}
	dst := make([]int32, off[nl])
	cur := make([]int32, nl)
	copy(cur, off[:nl])
	for _, v := range verts[:numPart] {
		li := in.GetOr(v, -1)
		for _, a := range g.Adj(v) {
			if partIn.Has(a.To) {
				dst[cur[li]] = in.GetOr(a.To, -1)
				cur[li]++
			}
		}
	}
	for _, id := range s.Edges[i] {
		e := g.Edge(id)
		lu, lv := in.GetOr(e.U, -1), in.GetOr(e.V, -1)
		dst[cur[lu]] = lv
		cur[lu]++
		dst[cur[lv]] = lu
		cur[lv]++
	}
	dist := make([]int32, nl)
	for li := range dist {
		dist[li] = -1
	}
	queue := make([]int32, 0, nl)
	src := in.GetOr(s.P.Sets[i][0], -1)
	dist[src] = 0
	queue = append(queue, src)
	ecc := int32(0)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		for _, w := range dst[off[u]:off[u+1]] {
			if dist[w] == -1 {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	if len(queue) != nl {
		return 0, fmt.Errorf("shortcut: augmented subgraph of part %d is disconnected: %w", i, graph.ErrDisconnected)
	}
	return int(ecc), nil
}

// augmentedSubgraph builds G[Pᵢ] + Hᵢ — the subgraph induced by part i plus
// its shortcut edges (with their endpoints) — and returns it with the local
// index of the part's minimum vertex (the probe source).
func (s *Shortcut) augmentedSubgraph(i int) (*graph.Graph, int, error) {
	if i < 0 || i >= s.P.NumParts() {
		return nil, 0, fmt.Errorf("shortcut: part %d out of range for %d parts", i, s.P.NumParts())
	}
	if len(s.P.Sets[i]) == 0 {
		return nil, 0, fmt.Errorf("shortcut: part %d is empty, augmented diameter undefined", i)
	}
	g := s.G
	in := g.AcquireScratch() // vertex -> local index (assigned after sort)
	defer g.ReleaseScratch(in)
	// Collect the augmented vertex set: the part plus shortcut endpoints.
	verts := make([]int, 0, len(s.P.Sets[i])+2*len(s.Edges[i]))
	for _, v := range s.P.Sets[i] {
		if in.Visit(v) {
			verts = append(verts, v)
		}
	}
	numPart := len(verts)
	for _, id := range s.Edges[i] {
		e := g.Edge(id)
		if in.Visit(e.U) {
			verts = append(verts, e.U)
		}
		if in.Visit(e.V) {
			verts = append(verts, e.V)
		}
	}
	sort.Ints(verts)
	for li, v := range verts {
		// Part members get values < numPart only by coincidence after the
		// sort, so store the local index and tag part membership separately.
		in.Set(v, int32(li))
	}
	partIn := g.AcquireScratch()
	defer g.ReleaseScratch(partIn)
	for _, v := range s.P.Sets[i] {
		partIn.Visit(v)
	}
	aug := graph.NewWithEdgeCapacity(len(verts), numPart+len(s.Edges[i]))
	// Induced part edges, discovered by scanning part adjacency (each edge
	// once, from its canonical U endpoint).
	for _, v := range s.P.Sets[i] {
		for _, a := range g.Adj(v) {
			if !partIn.Has(a.To) {
				continue
			}
			e := g.Edge(a.ID)
			if e.U != v {
				continue // the arc at the other endpoint adds it
			}
			aug.AddEdge(int(in.GetOr(e.U, -1)), int(in.GetOr(e.V, -1)), 1)
		}
	}
	for _, id := range s.Edges[i] {
		e := g.Edge(id)
		aug.AddEdge(int(in.GetOr(e.U, -1)), int(in.GetOr(e.V, -1)), 1)
	}
	return aug, int(in.GetOr(s.P.Sets[i][0], -1)), nil
}

// Union merges another shortcut assignment (same G, T, P) into s,
// part-by-part. Used to combine local and global shortcuts. The "same G, T,
// P" contract is enforced by identity: a union across different graphs or
// trees would silently mix unrelated edge ID spaces.
func (s *Shortcut) Union(other *Shortcut) error {
	if other.G != s.G {
		return fmt.Errorf("shortcut: union over different graphs")
	}
	if other.T != s.T {
		return fmt.Errorf("shortcut: union over different trees")
	}
	if other.P != s.P {
		return fmt.Errorf("shortcut: union over different part families")
	}
	for i := range s.Edges {
		s.Edges[i] = mergeSorted(s.Edges[i], other.Edges[i])
	}
	return nil
}

// mergeSorted merges two sorted deduplicated slices into a fresh sorted
// deduplicated slice. The result never aliases a or b, so an in-place
// mutation of the merge result cannot corrupt either input's owner.
func mergeSorted(a, b []int) []int {
	if len(b) == 0 {
		return append(make([]int, 0, len(a)), a...)
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

package shortcut_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

func gridParts(t *testing.T, rows, cols int) (*graph.Graph, *graph.Tree, *partition.Parts) {
	t.Helper()
	e := gen.Grid(rows, cols)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.GridRows(e.G, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return e.G, tr, p
}

func TestNewRejectsNonTreeEdges(t *testing.T) {
	g, tr, p := gridParts(t, 3, 3)
	// Find a non-tree edge.
	nonTree := -1
	for id := 0; id < g.M(); id++ {
		if !tr.IsTreeEdge(id) {
			nonTree = id
			break
		}
	}
	if nonTree == -1 {
		t.Fatal("no non-tree edge in grid")
	}
	edges := make([][]int, p.NumParts())
	edges[0] = []int{nonTree}
	if _, err := shortcut.New(g, tr, p, edges); err == nil {
		t.Fatal("accepted non-tree shortcut edge")
	}
}

func TestEmptyShortcutMeasurement(t *testing.T) {
	g, tr, p := gridParts(t, 4, 5)
	s := shortcut.Empty(g, tr, p)
	m := s.Measure()
	if m.Congestion != 0 {
		t.Fatalf("congestion %d", m.Congestion)
	}
	// With no help each row of length 5 has 5 singleton blocks.
	for i, b := range m.Blocks {
		if b != 5 {
			t.Fatalf("part %d blocks %d want 5", i, b)
		}
	}
	if m.MaxBlocks != 5 {
		t.Fatalf("max blocks %d", m.MaxBlocks)
	}
	if m.Quality != m.MaxBlocks*m.TreeDiameter+0 {
		t.Fatalf("quality %d", m.Quality)
	}
}

func TestWholeTreeShortcut(t *testing.T) {
	g, tr, p := gridParts(t, 4, 4)
	s := shortcut.Empty(g, tr, p)
	all := make([]int, p.NumParts())
	for i := range all {
		all[i] = i
	}
	shortcut.WholeTree(s, all)
	m := s.Measure()
	if m.MaxBlocks != 1 {
		t.Fatalf("whole-tree blocks %d want 1", m.MaxBlocks)
	}
	if m.Congestion != p.NumParts() {
		t.Fatalf("congestion %d want %d", m.Congestion, p.NumParts())
	}
	// Augmented diameter of any part is at most the tree diameter.
	for i := 0; i < p.NumParts(); i++ {
		d, err := s.AugmentedDiameter(i)
		if err != nil {
			t.Fatal(err)
		}
		if d > 2*tr.Height() {
			t.Fatalf("augmented diameter %d exceeds tree diameter", d)
		}
	}
}

func TestBlockCountsDefinition(t *testing.T) {
	// Path graph 0-1-2-3-4, one part {0,4}... not connected; use {0,1,3,4}?
	// Parts must be connected; use part {1,2,3} with a shortcut covering
	// only edge {1,2}: blocks must be 2 ({1,2} and singleton {3}).
	g := gen.Path(5)
	tr, _ := graph.BFSTree(g, 0)
	p, err := partition.New(g, [][]int{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := shortcut.New(g, tr, p, [][]int{{1}}) // edge 1 = {1,2}
	if err != nil {
		t.Fatal(err)
	}
	if b := s.BlockCounts()[0]; b != 2 {
		t.Fatalf("blocks %d want 2", b)
	}
}

func TestUnionMergesAssignments(t *testing.T) {
	g, tr, p := gridParts(t, 3, 4)
	s1 := shortcut.Empty(g, tr, p)
	s2 := shortcut.Empty(g, tr, p)
	ids := tr.TreeEdgeIDs()
	s1.Edges[0] = []int{ids[0]}
	s2.Edges[0] = []int{ids[0], ids[1]}
	s2.Edges[1] = []int{ids[2]}
	if err := s1.Union(s2); err != nil {
		t.Fatal(err)
	}
	if len(s1.Edges[0]) != 2 || len(s1.Edges[1]) != 1 {
		t.Fatalf("union wrong: %v", s1.Edges[:2])
	}
}

func TestObliviousRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, budget := range []int{1, 2, 4, 8} {
		e := gen.Grid(8, 8)
		tr, _ := graph.BFSTree(e.G, 0)
		p, err := partition.Voronoi(e.G, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := shortcut.Oblivious(e.G, tr, p, budget)
		m := s.Measure()
		if m.Congestion > budget {
			t.Fatalf("budget %d exceeded: congestion %d", budget, m.Congestion)
		}
	}
}

func TestObliviousImprovesOverEmpty(t *testing.T) {
	e := gen.Grid(10, 10)
	tr, _ := graph.BFSTree(e.G, 0)
	p, err := partition.GridRows(e.G, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	empty := shortcut.Empty(e.G, tr, p).Measure()
	s, m := shortcut.ObliviousAuto(e.G, tr, p)
	if m.Quality >= empty.Quality {
		t.Fatalf("oblivious quality %d no better than empty %d", m.Quality, empty.Quality)
	}
	if s == nil {
		t.Fatal("nil shortcut")
	}
}

func TestFromTreewidthOnKTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{2, 3, 5} {
		kt := gen.KTree(200, k, rng)
		tr, err := graph.BFSTree(kt.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := partition.Voronoi(kt.G, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := shortcut.FromTreewidth(kt.G, tr, p, kt.Decomp)
		if err != nil {
			t.Fatal(err)
		}
		m := res.S.Measure()
		// Theorem 5 shape: blocks O(k), congestion O(k·depth).
		foldedK := res.FoldedWidth + 1
		if m.MaxBlocks > 2*foldedK+3 {
			t.Fatalf("k=%d: blocks %d exceed O(k) bound %d", k, m.MaxBlocks, 2*foldedK+3)
		}
		if m.Congestion > foldedK*(res.FoldedHeight+1) {
			t.Fatalf("k=%d: congestion %d exceeds (k+1)·depth %d", k, m.Congestion, foldedK*(res.FoldedHeight+1))
		}
	}
}

func TestFromTreewidthBoruvkaFragments(t *testing.T) {
	// The realistic use: parts are Borůvka fragments mid-MST.
	rng := rand.New(rand.NewSource(3))
	kt := gen.KTree(300, 3, rng)
	gen.UniformWeights(kt.G, rng)
	for phases := 1; phases <= 3; phases++ {
		p, err := partition.BoruvkaFragments(kt.G, phases)
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := graph.BFSTree(kt.G, 0)
		res, err := shortcut.FromTreewidth(kt.G, tr, p, kt.Decomp)
		if err != nil {
			t.Fatal(err)
		}
		m := res.S.Measure()
		foldedK := res.FoldedWidth + 1
		if m.MaxBlocks > 2*foldedK+3 {
			t.Fatalf("phases=%d: blocks %d", phases, m.MaxBlocks)
		}
	}
}

func TestFromTreewidthSinglePartGetsConnected(t *testing.T) {
	// A single part spanning the whole graph should end up with few blocks
	// (the whole region is under the root bag).
	rng := rand.New(rand.NewSource(4))
	kt := gen.KTree(100, 2, rng)
	all := make([]int, kt.G.N())
	for i := range all {
		all[i] = i
	}
	p, err := partition.New(kt.G, [][]int{all})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := graph.BFSTree(kt.G, 0)
	res, err := shortcut.FromTreewidth(kt.G, tr, p, kt.Decomp)
	if err != nil {
		t.Fatal(err)
	}
	if b := res.S.BlockCounts()[0]; b != 1 {
		t.Fatalf("whole-graph part has %d blocks, want 1 (gets entire tree)", b)
	}
}

func TestAugmentedDiameterBound(t *testing.T) {
	// Framework promise: diam(G[P]+H) = O(b·d_T) — verify with constant 3
	// (2 for tree diameter, 1 slack for block hops).
	rng := rand.New(rand.NewSource(5))
	kt := gen.KTree(150, 3, rng)
	tr, _ := graph.BFSTree(kt.G, 0)
	p, err := partition.Voronoi(kt.G, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shortcut.FromTreewidth(kt.G, tr, p, kt.Decomp)
	if err != nil {
		t.Fatal(err)
	}
	blocks := res.S.BlockCounts()
	for i := 0; i < p.NumParts(); i++ {
		d, err := res.S.AugmentedDiameter(i)
		if err != nil {
			// Dangling shortcut segments (tree edges that never reach the
			// part) leave the augmented subgraph disconnected; the whole-
			// subgraph diameter is undefined there — previously this case
			// returned -1 and passed the bound check vacuously.
			continue
		}
		bound := 3 * (blocks[i] + 1) * (2*tr.Height() + 1)
		if d > bound {
			t.Fatalf("part %d: augmented diameter %d exceeds %d (b=%d)", i, d, bound, blocks[i])
		}
	}
}

package shortcut

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tw"
)

// TreewidthResult bundles the shortcut built from a treewidth witness with
// the construction's internal quantities, which the experiments report
// against Theorem 5's bounds.
type TreewidthResult struct {
	S            *Shortcut
	FoldedHeight int // depth of the folded decomposition (O(log² n))
	FoldedWidth  int // width after folding (≤ 3(k+1)-1)
}

// FromTreewidth realizes Theorem 5 ([HIZ16b]): given a tree decomposition of
// width k, it builds a T-restricted shortcut with block parameter O(k) and
// congestion O(k · log² n).
//
// Construction (see DESIGN.md §3): fold the decomposition to depth O(log²n);
// root it; for each part P let h(P) be the highest (minimum-depth) bag
// intersecting P; assign to P exactly the tree edges whose topmost
// containing bag lies in the subtree under h(P). Correctness:
//
//   - blocks ≤ O(k): every vertex of P on the boundary of its block — and
//     every singleton block — lies in bag h(P), which has O(k) vertices;
//   - congestion ≤ (width+1)·depth: an edge with top bag t is assigned only
//     to parts whose high bag is an ancestor-or-self of t, and each bag is
//     the high bag of at most width+1 disjoint parts.
func FromTreewidth(g *graph.Graph, t *graph.Tree, p *partition.Parts, d *tw.Decomposition) (*TreewidthResult, error) {
	if d.G != g {
		return nil, fmt.Errorf("shortcut: decomposition is not over the given graph")
	}
	rooted := d.Root(0)
	folded, _, err := tw.FoldRooted(rooted)
	if err != nil {
		return nil, fmt.Errorf("shortcut: folding decomposition: %w", err)
	}
	res := &TreewidthResult{
		FoldedHeight: folded.Height(),
		FoldedWidth:  folded.D.Width(),
	}
	nb := len(folded.D.Bags)
	// Euler intervals for ancestor tests on the folded bag tree.
	tin := make([]int, nb)
	tout := make([]int, nb)
	children := make([][]int, nb)
	for _, b := range folded.Order {
		if folded.Parent[b] >= 0 {
			children[folded.Parent[b]] = append(children[folded.Parent[b]], b)
		}
	}
	timer := 0
	type frame struct {
		b    int
		exit bool
	}
	stack := []frame{{folded.Root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.exit {
			tout[f.b] = timer
			timer++
			continue
		}
		tin[f.b] = timer
		timer++
		stack = append(stack, frame{f.b, true})
		for _, c := range children[f.b] {
			stack = append(stack, frame{c, false})
		}
	}
	isAncestor := func(a, b int) bool { return tin[a] <= tin[b] && tout[b] <= tout[a] }

	topBag := folded.TopBagOfEdge()
	// High bag per part; partsAt groups parts by their high bag.
	partsAt := make([][]int, nb)
	for i, set := range p.Sets {
		h := folded.HighestBag(set)
		if h == -1 {
			return nil, fmt.Errorf("shortcut: part %d meets no bag", i)
		}
		partsAt[h] = append(partsAt[h], i)
	}
	edges := make([][]int, p.NumParts())
	for v := 0; v < g.N(); v++ {
		id := t.ParentEdge[v]
		if id == -1 {
			continue
		}
		tb := topBag[id]
		if tb == -1 {
			return nil, fmt.Errorf("shortcut: tree edge %d in no bag", id)
		}
		// Walk ancestors of the edge's top bag; parts anchored there whose
		// subtree contains tb receive the edge.
		for a := tb; a != -1; a = folded.Parent[a] {
			for _, i := range partsAt[a] {
				if isAncestor(a, tb) { // always true on the ancestor walk
					edges[i] = append(edges[i], id)
				}
			}
		}
	}
	s, err := New(g, t, p, edges)
	if err != nil {
		return nil, fmt.Errorf("shortcut: assembling treewidth shortcut: %w", err)
	}
	res.S = s
	return res, nil
}

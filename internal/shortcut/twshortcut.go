package shortcut

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tw"
)

// TreewidthResult bundles the shortcut built from a treewidth witness with
// the construction's internal quantities, which the experiments report
// against Theorem 5's bounds.
type TreewidthResult struct {
	S            *Shortcut
	FoldedHeight int // depth of the folded decomposition (O(log² n))
	FoldedWidth  int // width after folding (≤ 3(k+1)-1)
}

// FromTreewidth realizes Theorem 5 ([HIZ16b]): given a tree decomposition of
// width k, it builds a T-restricted shortcut with block parameter O(k) and
// congestion O(k · log² n).
//
// Construction (see DESIGN.md §3): fold the decomposition to depth O(log²n);
// root it; for each part P let h(P) be the highest (minimum-depth) bag
// intersecting P; assign to P exactly the tree edges whose topmost
// containing bag lies in the subtree under h(P). Correctness:
//
//   - blocks ≤ O(k): every vertex of P on the boundary of its block — and
//     every singleton block — lies in bag h(P), which has O(k) vertices;
//   - congestion ≤ (width+1)·depth: an edge with top bag t is assigned only
//     to parts whose high bag is an ancestor-or-self of t, and each bag is
//     the high bag of at most width+1 disjoint parts.
//
// The folded bags are never materialized: tw.FoldSummary supplies each
// vertex's minimum-depth (post-repair) group, from which the top bag of a
// tree edge {u,v} is the deeper of minGroup[u] and minGroup[v] — two
// subtree roots whose intersection the edge certifies nonempty — and the
// high bag of a part is the shallowest minGroup over its members.
func FromTreewidth(g *graph.Graph, t *graph.Tree, p *partition.Parts, d *tw.Decomposition) (*TreewidthResult, error) {
	if d.G != g {
		return nil, fmt.Errorf("shortcut: decomposition is not over the given graph")
	}
	folded, minGroup, width, err := d.Root(0).FoldSummary()
	if err != nil {
		return nil, fmt.Errorf("shortcut: folding decomposition: %w", err)
	}
	res := &TreewidthResult{
		FoldedHeight: folded.Height(),
		FoldedWidth:  width,
	}
	nb := len(folded.Groups)
	// High bag per part; partsAt groups parts by their high bag.
	partsAt := make([][]int, nb)
	for i, set := range p.Sets {
		h := int32(-1)
		for _, v := range set {
			if mg := minGroup[v]; mg != -1 && (h == -1 || folded.Depth[mg] < folded.Depth[h]) {
				h = mg
			}
		}
		if h == -1 {
			return nil, fmt.Errorf("shortcut: part %d meets no bag", i)
		}
		partsAt[h] = append(partsAt[h], i)
	}
	// Top (minimum-depth) folded bag of each tree edge, by the subtree-root
	// argument above.
	topBagOf := func(id int) (int, error) {
		e := g.Edge(id)
		mu, mv := minGroup[e.U], minGroup[e.V]
		if mu == -1 || mv == -1 {
			return -1, fmt.Errorf("shortcut: tree edge %d in no bag", id)
		}
		if folded.Depth[mu] >= folded.Depth[mv] {
			return int(mu), nil
		}
		return int(mv), nil
	}
	// Two passes over the ancestor walks: count grants per part, then fill
	// exact-sized lists sliced from one backing array. Parts anchored at an
	// ancestor of an edge's top bag have that bag inside their subtree and
	// receive the edge. The first pass caches each tree edge's top bag for
	// the second.
	counts := make([]int32, p.NumParts())
	tbOf := make([]int32, g.N()) // indexed by vertex (its parent edge)
	total := 0
	for v := 0; v < g.N(); v++ {
		id := t.ParentEdge[v]
		if id == -1 {
			tbOf[v] = -1
			continue
		}
		tb, err := topBagOf(id)
		if err != nil {
			return nil, err
		}
		tbOf[v] = int32(tb)
		for a := tb; a != -1; a = folded.Parent[a] {
			for _, i := range partsAt[a] {
				counts[i]++
				total++
			}
		}
	}
	edges := make([][]int, p.NumParts())
	store := make([]int, 0, total)
	for i, c := range counts {
		base := len(store)
		store = store[:base+int(c)]
		edges[i] = store[base : base : base+int(c)]
	}
	for v := 0; v < g.N(); v++ {
		if tbOf[v] == -1 {
			continue
		}
		id := t.ParentEdge[v]
		for a := int(tbOf[v]); a != -1; a = folded.Parent[a] {
			for _, i := range partsAt[a] {
				edges[i] = append(edges[i], id)
			}
		}
	}
	// A part anchored at several ancestor groups of the same vertex collects
	// the same parent edge more than once; normalize through the constructor.
	s, err := NewNormalized(g, t, p, edges)
	if err != nil {
		return nil, fmt.Errorf("shortcut: assembling treewidth shortcut: %w", err)
	}
	res.S = s
	return res, nil
}

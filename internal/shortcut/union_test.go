package shortcut

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func pathWithTree(t *testing.T, n int) (*graph.Graph, *graph.Tree, *partition.Parts) {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]int{make([]int, n)}
	for i := range sets[0] {
		sets[0][i] = i
	}
	p, err := partition.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr, p
}

// Regression: Union only compared part counts, so two shortcuts over
// different graphs (or trees) with coincidentally equal part counts merged
// without complaint, mixing unrelated edge ID spaces.
func TestUnionRejectsMismatchedGraphAndTree(t *testing.T) {
	g1, t1, p1 := pathWithTree(t, 6)
	g2, t2, _ := pathWithTree(t, 6)

	s1, err := New(g1, t1, p1, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(g2, t2, mustParts(t, g2), [][]int{{2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Union(s2); err == nil {
		t.Fatal("union across different graphs must be rejected")
	}
	// Same graph, different tree.
	t1b, err := graph.BFSTree(g1, 5)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := New(g1, t1b, p1, [][]int{{2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Union(s3); err == nil {
		t.Fatal("union across different trees must be rejected")
	}
	// Same graph and tree, different Parts object (equal part count).
	s4, err := New(g1, t1, mustParts(t, g1), [][]int{{2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Union(s4); err == nil {
		t.Fatal("union across different part families must be rejected")
	}
}

func mustParts(t *testing.T, g *graph.Graph) *partition.Parts {
	t.Helper()
	sets := [][]int{make([]int, g.N())}
	for i := range sets[0] {
		sets[0][i] = i
	}
	p, err := partition.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Regression: mergeSorted's empty-b early return handed back a itself, so
// the caller's "fresh merged slice" aliased the input and a later in-place
// mutation of one shortcut's edge list corrupted the other's.
func TestMergeSortedNeverAliases(t *testing.T) {
	a := []int{1, 3, 5}
	got := mergeSorted(a, nil)
	if len(got) != 3 {
		t.Fatalf("merge with empty b: got %v", got)
	}
	got[0] = 99
	if a[0] == 99 {
		t.Fatal("mergeSorted(a, nil) aliased its input")
	}
}

// Union with an empty other must leave s usable and unaliased: mutating the
// merged edge list afterwards must not reach into any previously shared
// backing array.
func TestUnionWithEmptyOtherClones(t *testing.T) {
	g, tr, p := pathWithTree(t, 6)
	base := [][]int{{0, 1}}
	s1, err := New(g, tr, p, base)
	if err != nil {
		t.Fatal(err)
	}
	s2 := Empty(g, tr, p)
	before := append([]int(nil), s1.Edges[0]...)
	shared := s1.Edges[0]
	if err := s1.Union(s2); err != nil {
		t.Fatal(err)
	}
	s1.Edges[0][0] = 4 // in-place mutation of the merged result
	if shared[0] != before[0] {
		t.Fatal("union result aliased the pre-union edge list")
	}
}

package sssp

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// BatchResult reports a batched k-source approximate SSSP run.
type BatchResult struct {
	Srcs []int
	Eps  float64
	// Dist[i] is source Srcs[i]'s distance vector: exact under the
	// (1+ε)-rounded weights, byte-identical to what a sequential Approx
	// run from Srcs[i] returns (both are the unique fixed point of the
	// same monotone relaxation, and every phase a converged source sits
	// through is a no-op on it).
	Dist   [][]float64
	Phases int
	// CommRounds counts simulated communication rounds: k cross-edge
	// rounds per phase (one per tag — each edge exchanges one token per
	// round) plus the batched part-wise relaxation quiet-points.
	CommRounds int
	// ChargedRounds counts analytic-mode rounds: k cross-edge rounds plus
	// the O(h+k) framework budget (congest.BatchRelaxBudget) per phase.
	ChargedRounds int
	Messages      int
	// Quality is the measured shortcut quality (the per-phase charge basis).
	Quality int
	// MaxPhaseRounds is the largest simulated quiet-point over the batched
	// phases, and PhaseBudget the framework's converged per-phase bound it
	// stayed within — the measured "O(h+k) rounds per phase, not k·O(h)"
	// claim. Analytic runs report MaxPhaseRounds 0.
	MaxPhaseRounds int
	PhaseBudget    int
}

// ApproxBatch computes (1+ε)-approximate shortest paths from all k
// sources at once: each Bellman–Ford phase relaxes every source's
// tentative distances in one batched part-wise relaxation, the k tags
// multiplexed over the same part channels (congest.BatchRelaxer) instead
// of k sequential Approx pipelines. One phase costs O(h+k) rounds — the
// Pipecast pipelining win — against k·O(h) for the sequential schedule,
// and the answers are byte-identical to k sequential runs.
//
// The iteration runs until one phase is quiet for every source, so
// already-converged sources idle (at zero marginal rounds: a clean source
// contributes no dirty tokens) while stragglers finish.
func ApproxBatch(g *graph.Graph, srcs []int, p *partition.Parts, s *shortcut.Shortcut, opts Options) (*BatchResult, error) {
	n := g.N()
	k := len(srcs)
	if k == 0 {
		return nil, fmt.Errorf("sssp: batch needs at least one source")
	}
	for _, src := range srcs {
		if src < 0 || src >= n {
			return nil, fmt.Errorf("sssp: source %d out of range for n=%d", src, n)
		}
	}
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	maxPhases := opts.MaxPhases
	if maxPhases == 0 {
		maxPhases = n + 2
	}
	rounded, err := RoundWeights(g, opts.Eps)
	if err != nil {
		return nil, err
	}
	m := s.Measure()
	charge := congest.BatchRelaxBudget(m, k)
	e := newEngine(g, p, s, rounded)
	dist := make([][]float64, k)
	slab := make([]float64, k*n)
	for i, src := range srcs {
		dist[i] = slab[i*n : (i+1)*n : (i+1)*n]
		for v := range dist[i] {
			dist[i][v] = math.Inf(1)
		}
		dist[i][src] = 0
	}
	res := &BatchResult{
		Srcs:        append([]int(nil), srcs...),
		Eps:         opts.Eps,
		Quality:     m.Quality,
		PhaseBudget: charge,
	}
	var relaxer *congest.BatchRelaxer
	if opts.Simulate {
		relaxer = congest.NewBatchRelaxer(g, p, s)
	}
	for phase := 0; phase < maxPhases; phase++ {
		changed := false
		for i := 0; i < k; i++ {
			if e.crossPhase(dist[i]) {
				changed = true
			}
		}
		if opts.Simulate {
			r, err := relaxer.Relax(rounded, dist)
			if err != nil {
				return nil, fmt.Errorf("sssp: batch phase %d relaxation: %w", phase, err)
			}
			for i := 0; i < k; i++ {
				for v := 0; v < n; v++ {
					if r.Dist[i][v] < dist[i][v] {
						dist[i][v] = r.Dist[i][v]
						changed = true
					}
				}
			}
			res.CommRounds += k + r.EffectiveRounds
			res.Messages += k*2*g.M() + r.Stats.Messages
			if r.EffectiveRounds > res.MaxPhaseRounds {
				res.MaxPhaseRounds = r.EffectiveRounds
			}
			if r.Budget > res.PhaseBudget {
				res.PhaseBudget = r.Budget
			}
		} else {
			for i := 0; i < k; i++ {
				if e.intraPhase(dist[i]) {
					changed = true
				}
			}
			res.ChargedRounds += k + charge
		}
		res.Phases++
		if !changed {
			// A phase quiet for every source: all k fixed points — exact
			// distances under rounded weights — reached and paid for.
			res.Dist = dist
			return res, nil
		}
	}
	return nil, fmt.Errorf("sssp: batch no convergence within %d phases", maxPhases)
}

package sssp_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/sssp"
	"repro/internal/tw"
	"repro/internal/xrand"
)

// e14Family is one of the zero-witness pipeline's benchmark families with
// its witness-constructed shortcut — the construction E14 serves queries
// over.
type e14Family struct {
	name string
	g    *graph.Graph
	p    *partition.Parts
	s    *shortcut.Shortcut
}

// e14Families builds small instances of all three E14 families: grids with
// row parts, wheels with rim-arc parts, and K5-minor-free clique-sum
// chains with Voronoi parts.
func e14Families(t *testing.T, seed int64) []e14Family {
	t.Helper()
	rng := xrand.New(seed)
	var out []e14Family

	e := gen.Grid(6, 6)
	g := gen.UniformWeights(e.G, rng)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.GridRows(g, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tw.FromEmbeddingByCotree(e.Emb, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shortcut.FromTreewidth(g, tr, p, d)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, e14Family{"grid", g, p, res.S})

	a := gen.CycleWithApex(32, rng)
	g = gen.UniformWeights(a.G, rng)
	tr, err = graph.BFSTree(g, a.Apices[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err = partition.RimArcs(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := core.AlmostEmbeddableShortcut(g, tr, p, a)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, e14Family{"wheel", g, p, ares.S})

	pieces := []*gen.Piece{gen.ApollonianPiece(18, rng), gen.ApollonianPiece(20, rng)}
	cs := gen.CliqueSum(pieces, 3, rng)
	g = gen.UniformWeights(cs.G, rng)
	tr, err = graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err = partition.Voronoi(g, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := &core.CliqueSumWitness{CST: cs.CST, BagGraphs: cs.BagGraphs, BagDecomp: cs.BagDecomp, BagToGlobal: cs.BagToGlobal}
	cres, err := core.ExcludedMinorShortcut(g, tr, p, w)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, e14Family{"k5free", g, p, cres.S})
	return out
}

// The batched k-source run must return, per source, exactly the bytes the
// sequential single-source pipeline returns — on every E14 family, in
// both ledger modes.
func TestApproxBatchByteEqualSequential(t *testing.T) {
	for _, fam := range e14Families(t, 2018) {
		for _, simulate := range []bool{false, true} {
			n := fam.g.N()
			srcs := make([]int, 8)
			for i := range srcs {
				srcs[i] = (i * 5) % n
			}
			opts := sssp.Options{Eps: 0.125, Simulate: simulate}
			batch, err := sssp.ApproxBatch(fam.g, srcs, fam.p, fam.s, opts)
			if err != nil {
				t.Fatalf("%s simulate=%v: %v", fam.name, simulate, err)
			}
			if batch.MaxPhaseRounds > batch.PhaseBudget {
				t.Errorf("%s simulate=%v: per-phase quiet-point %d exceeds the O(h+k) budget %d",
					fam.name, simulate, batch.MaxPhaseRounds, batch.PhaseBudget)
			}
			for i, src := range srcs {
				seq, err := sssp.Approx(fam.g, src, fam.p, fam.s, opts)
				if err != nil {
					t.Fatalf("%s simulate=%v src=%d: %v", fam.name, simulate, src, err)
				}
				for v := 0; v < n; v++ {
					if batch.Dist[i][v] != seq.Dist[v] {
						t.Fatalf("%s simulate=%v src=%d vertex %d: batched %v vs sequential %v",
							fam.name, simulate, src, v, batch.Dist[i][v], seq.Dist[v])
					}
				}
			}
		}
	}
}

// Batched distances also satisfy the (1+eps) stretch guarantee against
// the exact oracle, per source.
func TestApproxBatchStretch(t *testing.T) {
	fam := e14Families(t, 7)[1] // wheel
	const eps = 0.2
	srcs := []int{0, 3, 11, 19}
	batch, err := sssp.ApproxBatch(fam.g, srcs, fam.p, fam.s, sssp.Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range srcs {
		exact, err := graph.Dijkstra(fam.g, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < fam.g.N(); v++ {
			d, want := batch.Dist[i][v], exact.Dist[v]
			if d < want-1e-12 || d > want*(1+eps)+1e-12 {
				t.Fatalf("src %d vertex %d: batched %v outside [%v, %v]", src, v, d, want, want*(1+eps))
			}
		}
	}
}

// The duplicate-source batch is legal and every copy gets the same vector.
func TestApproxBatchDuplicateSources(t *testing.T) {
	fam := e14Families(t, 7)[0] // grid
	batch, err := sssp.ApproxBatch(fam.g, []int{4, 4, 9}, fam.p, fam.s, sssp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < fam.g.N(); v++ {
		if batch.Dist[0][v] != batch.Dist[1][v] {
			t.Fatalf("duplicate sources diverge at vertex %d", v)
		}
	}
}

// The satellite regression: malformed Options must be rejected with the
// repo's wrapped invalid-options error instead of silently producing
// garbage (NaN eps in particular passes every `< 0` comparison).
func TestOptionsValidation(t *testing.T) {
	fam := e14Families(t, 7)[0]
	bad := []sssp.Options{
		{Eps: math.NaN()},
		{Eps: math.Inf(1)},
		{Eps: math.Inf(-1)},
		{Eps: -0.5},
		{MaxPhases: -1},
	}
	for _, opts := range bad {
		if _, err := sssp.Approx(fam.g, 0, fam.p, fam.s, opts); !errors.Is(err, sssp.ErrInvalidOptions) {
			t.Errorf("Approx(%+v): got %v, want ErrInvalidOptions", opts, err)
		}
		if _, err := sssp.ApproxBatch(fam.g, []int{0, 1}, fam.p, fam.s, opts); !errors.Is(err, sssp.ErrInvalidOptions) {
			t.Errorf("ApproxBatch(%+v): got %v, want ErrInvalidOptions", opts, err)
		}
	}
	// The zero value still selects the documented default.
	if _, err := sssp.Approx(fam.g, 0, fam.p, fam.s, sssp.Options{}); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}
}

package sssp_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// TestApproxConstructed: the full in-network pipeline — the network builds
// its own shortcut, then runs part-wise relaxation over it — keeps the
// (1+ε) stretch guarantee and books the construction rounds in the ledger
// matching the run's mode.
func TestApproxConstructed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.Wheel(65).G
	hub := g.N() - 1
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if e.U == hub || e.V == hub {
			g.SetWeight(id, 500+rng.Float64())
		} else {
			g.SetWeight(id, 1+0.25*rng.Float64())
		}
	}
	tr, err := graph.BFSTree(g, hub)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.RimArcs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := graph.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.1
	for _, simulate := range []bool{false, true} {
		r, err := sssp.ApproxConstructed(g, 0, tr, p, 2, sssp.Options{Eps: eps, Simulate: simulate})
		if err != nil {
			t.Fatalf("simulate=%v: %v", simulate, err)
		}
		for v := 0; v < g.N(); v++ {
			if v == 0 {
				continue
			}
			ratio := r.Dist[v] / exact.Dist[v]
			if ratio < 1-1e-12 || ratio > 1+eps+1e-12 {
				t.Fatalf("simulate=%v vertex %d: stretch %v outside [1, 1+eps]", simulate, v, ratio)
			}
		}
		if r.ConstructRounds <= 0 {
			t.Fatalf("simulate=%v: construction rounds not recorded", simulate)
		}
		if simulate {
			if r.CommRounds < r.ConstructRounds || r.ChargedRounds != 0 {
				t.Fatalf("simulate=true: construction rounds not in the simulated ledger: %+v", r)
			}
		} else {
			if r.ChargedRounds < r.ConstructRounds || r.CommRounds != 0 {
				t.Fatalf("simulate=false: construction rounds not in the charged ledger: %+v", r)
			}
		}
	}
}

// Package sssp implements distributed (1+ε)-approximate single-source
// shortest paths on the shortcut framework — the third optimization
// problem of the paper's headline trio (MST, min-cut, shortest path), in
// the style Ghaffari–Haeupler (arXiv:2008.03091) attach to low-congestion
// shortcuts.
//
// Algorithm: weight-rounded Bellman–Ford run as iterated part-wise
// relaxation. Edge weights are first rounded up to powers of (1+ε), so
// every computed distance over-estimates the true distance by at most the
// factor (1+ε) while message values stay O(log n)-bit describable. Each
// phase then performs
//
//  1. a cross-edge relaxation round: every node announces its tentative
//     distance to all neighbors (one synchronous round, one message per
//     edge direction), and
//  2. a part-wise relaxation: inside every part, improved distances flood
//     along the part's induced edges plus its shortcut edges to the
//     channel-graph fixed point (congest.RelaxPartwise, the SSSP analogue
//     of the part-wise aggregation subproblem).
//
// Distances only ever decrease and every value is realized by an actual
// path of the network, so the fixed point of the phase iteration is the
// exact distance under rounded weights; the achieved stretch against the
// exact oracle (graph.Dijkstra) is therefore at most 1+ε by construction.
// The phase count is bounded by the number of inter-part hops on shortest
// paths — on apex and clique-sum families a small constant — while naive
// distributed Bellman–Ford pays one round per hop of the (hop-heavy)
// shortest paths themselves.
//
// Round accounting follows the repo's two-ledger convention. Simulate mode
// runs every part-wise relaxation on the CONGEST engine and reports
// measured rounds in CommRounds. The default analytic mode (mirroring
// mincut.Approx's SimulateMST=false fast path) computes phase fixed points
// sequentially and charges each part-wise primitive the framework's
// Õ(quality) round budget in ChargedRounds — the bound the
// transshipment-boosted algorithms of the literature achieve; the simple
// flooding protocol the simulator runs is hop-bound on weighted paths, so
// it validates correctness and congestion behavior rather than the
// headline round bound (a DESIGN.md-style substitution, like min-cut's
// central 2-respecting evaluation).
package sssp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
)

// Options configures the approximation.
type Options struct {
	// Eps is the approximation slack (default 0.1); rounded weights
	// over-estimate each edge by at most this factor. Must be finite and
	// strictly positive (ErrInvalidOptions otherwise).
	Eps float64
	// MaxPhases aborts non-converging runs (0 = n+2, which is always
	// sufficient: each phase includes a full cross-edge pass).
	MaxPhases int
	// Simulate runs each phase's part-wise relaxation on the CONGEST
	// simulator; false computes fixed points sequentially and charges
	// rounds analytically (quality-based), for large benches.
	Simulate bool
}

// ErrInvalidOptions is wrapped by every sssp entry point when Options fail
// validation, mirroring congest.ErrInvalidOptions: errors.Is-able, with
// the offending field in the message.
var ErrInvalidOptions = errors.New("sssp: invalid options")

// normalized applies defaults and validates: the zero Eps selects the
// documented default, anything else must be a finite positive slack. NaN
// in particular fails every comparison silently, so it is rejected here
// explicitly rather than left to produce all-Inf "distances" downstream.
func (o Options) normalized() (Options, error) {
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	if math.IsNaN(o.Eps) || math.IsInf(o.Eps, 0) || o.Eps < 0 {
		return o, fmt.Errorf("%w: eps %v (want finite eps > 0)", ErrInvalidOptions, o.Eps)
	}
	if o.MaxPhases < 0 {
		return o, fmt.Errorf("%w: negative MaxPhases %d", ErrInvalidOptions, o.MaxPhases)
	}
	return o, nil
}

// Result reports an approximate SSSP run.
type Result struct {
	Source int
	Eps    float64
	// Dist holds the computed distances: exact under the (1+ε)-rounded
	// weights, hence within [d, (1+ε)·d] of the true distance d.
	Dist   []float64
	Phases int
	// CommRounds counts simulated communication rounds (Simulate mode:
	// cross-edge rounds plus part-wise relaxation quiet-points).
	CommRounds int
	// ChargedRounds counts analytic-mode rounds: one per cross-edge round
	// plus the Õ(quality) framework budget per part-wise primitive.
	ChargedRounds int
	Messages      int
	// Quality is the measured shortcut quality (the per-phase charge basis).
	Quality int
	// ConstructRounds is the in-network shortcut construction's round cost
	// when the run built its own shortcut (ApproxConstructed); the rounds
	// are already folded into CommRounds or ChargedRounds per the run's
	// mode. Zero when the shortcut was supplied by the caller.
	ConstructRounds int
}

// ApproxConstructed is Approx over a shortcut the network builds itself:
// the flooding construction (congest.ConstructShortcut) at congestion cap
// runs first — simulated or analytic per opts.Simulate — and its round cost
// lands in the matching ledger, so the result prices the full pipeline
// rather than assuming a shortcut fell from the sky.
func ApproxConstructed(g *graph.Graph, src int, t *graph.Tree, p *partition.Parts, cap int, opts Options) (*Result, error) {
	cres, err := congest.ConstructShortcut(g, t, p, congest.ConstructOptions{Cap: cap, Simulate: opts.Simulate})
	if err != nil {
		return nil, fmt.Errorf("sssp: shortcut construction: %w", err)
	}
	r, err := Approx(g, src, p, cres.S, opts)
	if err != nil {
		return nil, err
	}
	if opts.Simulate {
		r.ConstructRounds = cres.EffectiveRounds
		r.CommRounds += cres.EffectiveRounds
		r.Messages += cres.Stats.Messages
	} else {
		r.ConstructRounds = cres.ChargedRounds
		r.ChargedRounds += cres.ChargedRounds
	}
	return r, nil
}

// ApproxProvided is Approx over the unified provider layer: the shortcut
// comes from any pipeline.Provider — witness-derived, oblivious, flooding,
// or the fully self-sufficient cap search — and the provider's two-ledger
// cost is booked into the matching result fields (Rounds.Simulated into
// CommRounds, Rounds.Charged into ChargedRounds), with the combined cost
// reported as ConstructRounds.
func ApproxProvided(g *graph.Graph, src int, p *partition.Parts, provider pipeline.Provider, opts Options) (*Result, error) {
	s, cost, err := provider(p)
	if err != nil {
		return nil, fmt.Errorf("sssp: shortcut provider: %w", err)
	}
	r, err := Approx(g, src, p, s, opts)
	if err != nil {
		return nil, err
	}
	r.ConstructRounds = cost.Total()
	r.CommRounds += cost.Simulated
	r.ChargedRounds += cost.Charged
	return r, nil
}

// Approx computes (1+ε)-approximate shortest paths from src with part-wise
// relaxation over the given parts and shortcut. Edge weights must be
// strictly positive.
func Approx(g *graph.Graph, src int, p *partition.Parts, s *shortcut.Shortcut, opts Options) (*Result, error) {
	n := g.N()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("sssp: source %d out of range for n=%d", src, n)
	}
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	maxPhases := opts.MaxPhases
	if maxPhases == 0 {
		maxPhases = n + 2
	}
	rounded, err := RoundWeights(g, opts.Eps)
	if err != nil {
		return nil, err
	}
	m := s.Measure()
	// The framework's per-primitive round budget — the same estimate the
	// simulated primitive starts from, by construction.
	charge := congest.RelaxBudget(m)
	e := newEngine(g, p, s, rounded)
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[src] = 0
	res := &Result{Source: src, Eps: opts.Eps, Quality: m.Quality}
	var relaxer *congest.Relaxer
	if opts.Simulate {
		relaxer = congest.NewRelaxer(g, p, s)
	}
	for phase := 0; phase < maxPhases; phase++ {
		changedCross := e.crossPhase(dist)
		var changedIntra bool
		if opts.Simulate {
			r, err := relaxer.Relax(rounded, dist)
			if err != nil {
				return nil, fmt.Errorf("sssp: phase %d relaxation: %w", phase, err)
			}
			for v := 0; v < n; v++ {
				if r.Dist[v] < dist[v] {
					dist[v] = r.Dist[v]
					changedIntra = true
				}
			}
			res.CommRounds += 1 + r.EffectiveRounds
			res.Messages += 2*g.M() + r.Stats.Messages
		} else {
			changedIntra = e.intraPhase(dist)
			res.ChargedRounds += 1 + charge
		}
		res.Phases++
		if !changedCross && !changedIntra {
			// A full quiet phase: the fixed point — exact distances under
			// rounded weights — has been reached (and paid for: detecting
			// quiescence costs the phase).
			res.Dist = dist
			return res, nil
		}
	}
	return nil, fmt.Errorf("sssp: no convergence within %d phases", maxPhases)
}

// engine holds the phase iteration scratch, shared across the k distance
// vectors of a batched run; all buffers are allocated once and reused, so
// a warm phase allocates nothing. The tentative distances themselves are
// parameters — one vector per source — so ApproxBatch drives the same
// engine over k vectors without k copies of the scratch.
type engine struct {
	g         *graph.Graph
	rounded   []float64
	onChannel []bool // per edge: carries at least one (part, edge) channel
	next      []float64
	heap      graph.MinDistHeap // scratch for the intra-phase potential Dijkstra
	done      []bool
}

func newEngine(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, rounded []float64) *engine {
	n := g.N()
	e := &engine{
		g:         g,
		rounded:   rounded,
		onChannel: make([]bool, g.M()),
		next:      make([]float64, n),
		done:      make([]bool, n),
	}
	for id := 0; id < g.M(); id++ {
		if g.EdgeRemoved(id) {
			continue
		}
		ed := g.Edge(id)
		if pi := p.Of[ed.U]; pi != -1 && pi == p.Of[ed.V] {
			e.onChannel[id] = true
		}
	}
	for _, ids := range s.Edges {
		for _, id := range ids {
			e.onChannel[id] = true
		}
	}
	return e
}

// crossPhase performs one synchronous (Jacobi) relaxation round over every
// edge of the network: new values are computed from the previous round's
// values only, exactly what one CONGEST round of neighbor exchange can do.
func (e *engine) crossPhase(dist []float64) bool {
	copy(e.next, dist)
	g := e.g
	for id := 0; id < g.M(); id++ {
		if g.EdgeRemoved(id) {
			continue
		}
		ed := g.Edge(id)
		w := e.rounded[id]
		if c := dist[ed.U] + w; c < e.next[ed.V] {
			e.next[ed.V] = c
		}
		if c := dist[ed.V] + w; c < e.next[ed.U] {
			e.next[ed.U] = c
		}
	}
	changed := false
	for v := range dist {
		if e.next[v] < dist[v] {
			changed = true
		}
	}
	copy(dist, e.next)
	return changed
}

// intraPhase relaxes to the part-wise fixed point sequentially: a
// potential-initialized Dijkstra over the channel edges, updating dist in
// place. This is the analytic-mode stand-in for congest.RelaxPartwise and
// computes the identical fixed point.
func (e *engine) intraPhase(dist []float64) bool {
	g := e.g
	e.heap.Reset(dist)
	for v := range dist {
		e.done[v] = false
		if !math.IsInf(dist[v], 1) {
			e.heap.Push(v)
		}
	}
	changed := false
	for e.heap.Len() > 0 {
		v := e.heap.Pop()
		if e.done[v] {
			continue
		}
		e.done[v] = true
		for _, a := range g.Adj(v) {
			if !e.onChannel[a.ID] {
				continue
			}
			if cand := dist[v] + e.rounded[a.ID]; cand < dist[a.To] {
				dist[a.To] = cand
				changed = true
				e.heap.Push(a.To)
			}
		}
	}
	return changed
}

// RoundWeights returns the per-edge weights rounded up to the next power
// of 1+eps: w ≤ rounded ≤ (1+eps)·w, so path distances over the rounded
// weights over-estimate by at most the factor 1+eps while taking only
// O(log_{1+eps} W) distinct values per scale. Weights must be strictly
// positive.
func RoundWeights(g *graph.Graph, eps float64) ([]float64, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("sssp: eps must be finite and positive, got %v", eps)
	}
	base := 1 + eps
	logBase := math.Log(base)
	out := make([]float64, g.M())
	for id := 0; id < g.M(); id++ {
		if g.EdgeRemoved(id) {
			// Churn tombstone: the arc is gone from every adjacency list,
			// so its rounded weight is never read. Leave it zero.
			continue
		}
		w := g.Edge(id).W
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("sssp: edge %d has non-positive weight %v", id, w)
		}
		r := math.Pow(base, math.Ceil(math.Log(w)/logBase))
		// Float guards: the rounded weight must stay within [w, (1+eps)·w].
		if r < w {
			r *= base
		}
		if r > w*base {
			r = w * base
		}
		out[id] = r
	}
	return out, nil
}

// NaiveRounds returns the number of synchronous rounds the naive
// distributed SSSP baseline — plain Bellman–Ford, every node announcing
// improvements to all neighbors — needs from src: the largest settle
// round over all vertices (graph.Dijkstra's Hops) plus one final quiet
// round. On hop-heavy families (rim paths under expensive spokes) this
// grows linearly with n even when the diameter is constant.
func NaiveRounds(g *graph.Graph, src int) (int, error) {
	r, err := graph.Dijkstra(g, src)
	if err != nil {
		return 0, err
	}
	return NaiveRoundsFrom(r), nil
}

// NaiveRoundsFrom derives the naive baseline's round count from an
// already-computed oracle result, for callers that also need the exact
// distances (e.g. the E9 stretch column) and should not pay a second
// Dijkstra.
func NaiveRoundsFrom(r *graph.SPResult) int {
	maxHops := 0
	for _, h := range r.Hops {
		if h > maxHops {
			maxHops = h
		}
	}
	return maxHops + 1
}

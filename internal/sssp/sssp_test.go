package sssp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/xrand"
)

// approxOn runs the pipeline on g with Voronoi parts and an oblivious
// shortcut and validates the (1+eps) stretch guarantee against Dijkstra.
func approxOn(t *testing.T, g *graph.Graph, numParts int, eps float64, rng *rand.Rand, opts Options) *Result {
	t.Helper()
	p, err := partition.Voronoi(g, numParts, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	src := rng.Intn(g.N())
	opts.Eps = eps
	r, err := Approx(g, src, p, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := graph.Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[src] != 0 {
		t.Fatalf("source distance %v", r.Dist[src])
	}
	for v := 0; v < g.N(); v++ {
		if v == src {
			continue
		}
		if r.Dist[v] < exact.Dist[v]-1e-9 {
			t.Fatalf("vertex %d: approx %v below exact %v", v, r.Dist[v], exact.Dist[v])
		}
		if r.Dist[v] > exact.Dist[v]*(1+eps)+1e-9 {
			t.Fatalf("vertex %d: approx %v exceeds (1+%v)·%v", v, r.Dist[v], eps, exact.Dist[v])
		}
	}
	return r
}

// Stretch stays within 1+eps on randomized planar, k-tree, and clique-sum
// instances across eps values — the guarantee the weight rounding provides
// by construction, checked end to end against the exact oracle.
func TestStretchWithinEpsOnRandomFamilies(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.4} {
		rng := xrand.New(101 + int64(eps*1000))
		// Planar: random Apollonian triangulations.
		for trial := 0; trial < 3; trial++ {
			g := gen.UniformWeights(gen.NewApollonian(40+rng.Intn(30), rng).G, rng)
			approxOn(t, g, 6, eps, rng, Options{})
		}
		// Bounded treewidth: random partial 3-trees.
		for trial := 0; trial < 3; trial++ {
			g := gen.UniformWeights(gen.KTree(50+rng.Intn(30), 3, rng).G, rng)
			approxOn(t, g, 6, eps, rng, Options{})
		}
		// K5-minor-free clique-sums of planar pieces.
		pieces := make([]*gen.Piece, 3)
		for i := range pieces {
			pieces[i] = gen.ApollonianPiece(16, rng)
		}
		g := gen.UniformWeights(gen.CliqueSum(pieces, 3, rng).G, rng)
		approxOn(t, g, 6, eps, rng, Options{})
	}
}

// The simulated pipeline and the analytic fast path must produce
// bit-identical distances (both converge to the exact rounded-weight
// distances via the same left-to-right path sums), and each mode must keep
// its rounds in its own ledger.
func TestSimulateMatchesAnalytic(t *testing.T) {
	rng := xrand.New(55)
	g := gen.Wheel(49).G
	hub := g.N() - 1
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if e.U == hub || e.V == hub {
			g.SetWeight(id, 480+rng.Float64())
		} else {
			g.SetWeight(id, 1+0.25*rng.Float64())
		}
	}
	p, err := partition.RimArcs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, hub)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	analytic, err := Approx(g, 0, p, s, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	simulated, err := Approx(g, 0, p, s, Options{Eps: 0.1, Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if analytic.Dist[v] != simulated.Dist[v] {
			t.Fatalf("vertex %d: analytic %v vs simulated %v", v, analytic.Dist[v], simulated.Dist[v])
		}
	}
	if analytic.Phases != simulated.Phases {
		t.Fatalf("phase counts differ: %d vs %d", analytic.Phases, simulated.Phases)
	}
	// Ledger purity (the mincut regression, enforced here from day one).
	if analytic.CommRounds != 0 || analytic.ChargedRounds <= 0 {
		t.Fatalf("analytic ledgers: comm=%d charged=%d", analytic.CommRounds, analytic.ChargedRounds)
	}
	if simulated.ChargedRounds != 0 || simulated.CommRounds <= 0 {
		t.Fatalf("simulated ledgers: comm=%d charged=%d", simulated.CommRounds, simulated.ChargedRounds)
	}
	if simulated.Messages <= 0 {
		t.Fatal("simulated run recorded no messages")
	}
}

// The pipeline's result is deterministic: same inputs, same output, at any
// GOMAXPROCS (the engine promises transcript determinism; the analytic
// path is sequential).
func TestApproxDeterministic(t *testing.T) {
	rng := xrand.New(77)
	g := gen.UniformWeights(gen.NewApollonian(60, rng).G, rng)
	p, err := partition.Voronoi(g, 5, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	run := func(sim bool) *Result {
		r, err := Approx(g, 2, p, s, Options{Eps: 0.1, Simulate: sim})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(true), run(true)
	if a.CommRounds != b.CommRounds || a.Messages != b.Messages || a.Phases != b.Phases {
		t.Fatalf("nondeterministic simulated run: %+v vs %+v", a, b)
	}
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] {
			t.Fatalf("vertex %d distances differ across runs", v)
		}
	}
}

// The analytic phase hot path must not allocate once warm: all phase state
// (Jacobi buffers, channel marks, the potential-Dijkstra heap) is reused.
func TestPhaseHotPathAllocs(t *testing.T) {
	rng := xrand.New(42)
	g := gen.UniformWeights(gen.Wheel(129).G, rng)
	p, err := partition.RimArcs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	rounded, err := RoundWeights(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(g, p, s, rounded)
	dist := make([]float64, g.N())
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[0] = 0
	for i := 0; i < 3; i++ { // warm: run phases to convergence
		e.crossPhase(dist)
		e.intraPhase(dist)
	}
	allocs := testing.AllocsPerRun(50, func() {
		e.crossPhase(dist)
		e.intraPhase(dist)
	})
	if allocs != 0 {
		t.Fatalf("phase hot path allocates %v times per phase", allocs)
	}
}

func TestRoundWeightsBounds(t *testing.T) {
	rng := xrand.New(8)
	g := gen.UniformWeights(gen.NewApollonian(30, rng).G, rng)
	for id := 0; id < g.M(); id++ {
		g.SetWeight(id, g.Edge(id).W*math.Pow(10, float64(rng.Intn(7)-3)))
	}
	const eps = 0.17
	r, err := RoundWeights(g, eps)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.M(); id++ {
		w := g.Edge(id).W
		if r[id] < w || r[id] > w*(1+eps)*(1+1e-12) {
			t.Fatalf("edge %d: weight %v rounded to %v outside [w, (1+eps)w]", id, w, r[id])
		}
	}
	g.SetWeight(0, 0)
	if _, err := RoundWeights(g, eps); err == nil {
		t.Fatal("accepted zero weight")
	}
	g.SetWeight(0, 1)
	if _, err := RoundWeights(g, 0); err == nil {
		t.Fatal("accepted eps=0")
	}
}

func TestNaiveRoundsOnPath(t *testing.T) {
	g := gen.Path(10)
	rounds, err := NaiveRounds(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 10 { // 9 hops to the far end + the final quiet broadcast
		t.Fatalf("NaiveRounds = %d, want 10", rounds)
	}
}

func TestApproxErrors(t *testing.T) {
	g := gen.Path(4)
	p, err := partition.New(g, [][]int{{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := shortcut.Empty(g, tr, p)
	if _, err := Approx(g, -1, p, s, Options{}); err == nil {
		t.Fatal("accepted bad source")
	}
	if _, err := Approx(g, 0, p, s, Options{Eps: -0.5}); err == nil {
		t.Fatal("accepted negative eps")
	}
	g.SetWeight(0, -2)
	if _, err := Approx(g, 0, p, s, Options{}); err == nil {
		t.Fatal("accepted negative weight")
	}
}

package structure

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/tw"
)

// Vortex records one vortex (Definition 4) attached to a face of the base
// embedding: internal vortex nodes, each covering an arc of the boundary
// cycle, connected to boundary vertices within their arc and optionally to
// arc-adjacent internal nodes.
type Vortex struct {
	Boundary []int // boundary cycle vertices in cyclic order (base vertices)
	Internal []int // internal vortex node IDs (in the full graph)
	// Arc[i] = [start, length]: internal node i covers boundary positions
	// start, start+1, ..., start+length-1 (mod len(Boundary)).
	Arc [][2]int
	// Depth is the declared vortex depth: no boundary vertex may be covered
	// by more than Depth arcs.
	Depth int
}

// CoversPosition reports whether internal node index i covers boundary
// position p.
func (v *Vortex) CoversPosition(i, p int) bool {
	n := len(v.Boundary)
	start, length := v.Arc[i][0], v.Arc[i][1]
	diff := (p - start + n) % n
	return diff < length
}

// ArcVertices returns the boundary vertices of internal node i's arc.
func (v *Vortex) ArcVertices(i int) []int {
	n := len(v.Boundary)
	start, length := v.Arc[i][0], v.Arc[i][1]
	out := make([]int, 0, length)
	for j := 0; j < length; j++ {
		out = append(out, v.Boundary[(start+j)%n])
	}
	return out
}

// AlmostEmbeddable is a (Q, Genus, K, L)-almost-embeddable structure
// (Definition 5): the full graph G consists of a base graph embedded on a
// surface of genus at most Genus (vertices 0..BaseN-1), at most L vortices
// of depth at most K added to faces of the base, and Q apices connected
// arbitrarily.
type AlmostEmbeddable struct {
	G        *graph.Graph
	BaseN    int              // vertices 0..BaseN-1 form the embedded base
	Base     *graph.Graph     // the base graph itself
	BaseEmb  *embed.Embedding // embedding witness of the base
	Vortices []Vortex
	Apices   []int // apex vertex IDs in G
	Q        int   // declared apex bound
	Genus    int   // declared genus bound
	K        int   // declared vortex depth bound
	L        int   // declared vortex count bound

	// BaseTD is an optional tree-decomposition witness of the base graph,
	// used by the shortcut construction when the base is not planar (where
	// the cotree construction does not apply). Generators for positive-genus
	// bases populate it.
	BaseTD *tw.Decomposition
}

// IsApex reports whether vertex v of G is an apex.
func (a *AlmostEmbeddable) IsApex(v int) bool {
	for _, x := range a.Apices {
		if x == v {
			return true
		}
	}
	return false
}

// VortexOf returns the index of the vortex containing internal node v, or
// -1 if v is not an internal vortex node.
func (a *AlmostEmbeddable) VortexOf(v int) int {
	for vi := range a.Vortices {
		for _, u := range a.Vortices[vi].Internal {
			if u == v {
				return vi
			}
		}
	}
	return -1
}

// Validate checks the structure against Definition 5:
//   - the base embedding is valid with genus at most Genus;
//   - base vertices come first, then vortex internals, then apices, jointly
//     covering G;
//   - at most L vortices, each of depth at most K, each attached to a face
//     of the base embedding, with internal-node edges staying inside arcs or
//     between arc-adjacent internals (Definition 4);
//   - at most Q apices, whose edges are unconstrained;
//   - base edges of G match the base graph.
func (a *AlmostEmbeddable) Validate() error {
	if a.Base.N() != a.BaseN {
		return fmt.Errorf("structure: base graph has %d vertices, BaseN=%d", a.Base.N(), a.BaseN)
	}
	if err := a.BaseEmb.Validate(); err != nil {
		return fmt.Errorf("structure: base embedding: %w", err)
	}
	if g := a.BaseEmb.Genus(); g > a.Genus {
		return fmt.Errorf("structure: base genus %d exceeds declared %d", g, a.Genus)
	}
	if len(a.Vortices) > a.L {
		return fmt.Errorf("structure: %d vortices exceed L=%d", len(a.Vortices), a.L)
	}
	if len(a.Apices) > a.Q {
		return fmt.Errorf("structure: %d apices exceed Q=%d", len(a.Apices), a.Q)
	}
	// Vertex roles partition G.
	role := make([]int, a.G.N()) // 0 unset, 1 base, 2 vortex, 3 apex
	for v := 0; v < a.BaseN; v++ {
		role[v] = 1
	}
	for vi := range a.Vortices {
		for _, v := range a.Vortices[vi].Internal {
			if v < 0 || v >= a.G.N() || role[v] != 0 {
				return fmt.Errorf("structure: vortex %d internal node %d invalid or reused", vi, v)
			}
			role[v] = 2
		}
	}
	for _, v := range a.Apices {
		if v < 0 || v >= a.G.N() || role[v] != 0 {
			return fmt.Errorf("structure: apex %d invalid or reused", v)
		}
		role[v] = 3
	}
	for v, r := range role {
		if r == 0 {
			return fmt.Errorf("structure: vertex %d has no role", v)
		}
	}
	// Vortex structure.
	boundarySet := make([]map[int]int, len(a.Vortices)) // vertex -> position
	faceOK := a.vortexFaces()
	for vi := range a.Vortices {
		vx := &a.Vortices[vi]
		if len(vx.Internal) != len(vx.Arc) {
			return fmt.Errorf("structure: vortex %d has %d internals, %d arcs", vi, len(vx.Internal), len(vx.Arc))
		}
		boundarySet[vi] = make(map[int]int, len(vx.Boundary))
		for p, v := range vx.Boundary {
			if v < 0 || v >= a.BaseN {
				return fmt.Errorf("structure: vortex %d boundary vertex %d not in base", vi, v)
			}
			boundarySet[vi][v] = p
		}
		if !faceOK[vi] {
			return fmt.Errorf("structure: vortex %d boundary is not a face of the base embedding", vi)
		}
		// Depth: no boundary position covered by more than Depth arcs.
		if vx.Depth > 0 {
			cover := make([]int, len(vx.Boundary))
			for i := range vx.Internal {
				for j := 0; j < vx.Arc[i][1]; j++ {
					cover[(vx.Arc[i][0]+j)%len(vx.Boundary)]++
				}
			}
			for p, cvr := range cover {
				if cvr > vx.Depth {
					return fmt.Errorf("structure: vortex %d position %d covered %d > depth %d", vi, p, cvr, vx.Depth)
				}
			}
			if vx.Depth > a.K {
				return fmt.Errorf("structure: vortex %d depth %d exceeds K=%d", vi, vx.Depth, a.K)
			}
		}
	}
	// Edge discipline.
	internalIdx := make(map[int][2]int) // vertex -> (vortex, internal index)
	for vi := range a.Vortices {
		for ii, v := range a.Vortices[vi].Internal {
			internalIdx[v] = [2]int{vi, ii}
		}
	}
	baseEdges := 0
	for id := 0; id < a.G.M(); id++ {
		e := a.G.Edge(id)
		ru, rv := role[e.U], role[e.V]
		switch {
		case ru == 3 || rv == 3:
			// Apex edges are unconstrained.
		case ru == 1 && rv == 1:
			if !a.Base.HasEdge(e.U, e.V) {
				return fmt.Errorf("structure: base edge {%d,%d} missing from base graph", e.U, e.V)
			}
			baseEdges++
		case ru == 2 && rv == 2:
			iu, iv := internalIdx[e.U], internalIdx[e.V]
			if iu[0] != iv[0] {
				return fmt.Errorf("structure: edge {%d,%d} joins different vortices", e.U, e.V)
			}
			if !a.arcsAdjacent(iu[0], iu[1], iv[1]) {
				return fmt.Errorf("structure: internal nodes %d,%d of vortex %d have non-touching arcs", e.U, e.V, iu[0])
			}
		case ru == 2 || rv == 2:
			in, b := e.U, e.V
			if rv == 2 {
				in, b = e.V, e.U
			}
			idx := internalIdx[in]
			p, ok := boundarySet[idx[0]][b]
			if !ok {
				return fmt.Errorf("structure: internal node %d connects to non-boundary vertex %d", in, b)
			}
			if !a.Vortices[idx[0]].CoversPosition(idx[1], p) {
				return fmt.Errorf("structure: internal node %d connects outside its arc (vertex %d)", in, b)
			}
		default:
			return fmt.Errorf("structure: unexpected edge role combination %d,%d", ru, rv)
		}
	}
	if baseEdges != a.Base.M() {
		return fmt.Errorf("structure: G has %d base edges, base graph has %d", baseEdges, a.Base.M())
	}
	return nil
}

// vortexFaces checks each vortex boundary against the faces of the base
// embedding, returning per-vortex success.
func (a *AlmostEmbeddable) vortexFaces() []bool {
	faces, _ := a.BaseEmb.Faces()
	ok := make([]bool, len(a.Vortices))
	for vi := range a.Vortices {
		want := a.Vortices[vi].Boundary
		for _, f := range faces {
			vs := a.BaseEmb.FaceVertices(f)
			if cyclicEqual(vs, want) {
				ok[vi] = true
				break
			}
		}
	}
	return ok
}

// arcsAdjacent reports whether arcs i and j of vortex vi share a boundary
// vertex (Definition 4 allows edges between such internal nodes).
func (a *AlmostEmbeddable) arcsAdjacent(vi, i, j int) bool {
	vx := &a.Vortices[vi]
	n := len(vx.Boundary)
	for t := 0; t < vx.Arc[i][1]; t++ {
		p := (vx.Arc[i][0] + t) % n
		if vx.CoversPosition(j, p) {
			return true
		}
	}
	return false
}

// cyclicEqual reports whether b is a rotation (in either direction) of a.
func cyclicEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	n := len(a)
	if n == 0 {
		return true
	}
	for shift := 0; shift < n; shift++ {
		fwd, bwd := true, true
		for i := 0; i < n; i++ {
			if a[(shift+i)%n] != b[i] {
				fwd = false
			}
			if a[(shift-i+2*n)%n] != b[i] {
				bwd = false
			}
			if !fwd && !bwd {
				break
			}
		}
		if fwd || bwd {
			return true
		}
	}
	return false
}

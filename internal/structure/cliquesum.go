// Package structure defines the Graph Structure Theorem witness objects from
// the paper's Section 1.3.2 — k-clique-sum decomposition trees (Definition 8)
// and almost-embeddable structures (Definitions 2-5 with vortices per
// Definition 4) — together with validators that check every property the
// paper lists. Generators in internal/gen produce graphs carrying these
// witnesses; the shortcut constructions in internal/core consume them.
package structure

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// CliqueSumTree is a k-clique-sum decomposition tree (Definition 8): a tree
// whose nodes are bags (subgraphs of G) such that adjacent bags intersect in
// a partial clique of at most K vertices.
type CliqueSumTree struct {
	G    *graph.Graph
	Bags []Bag
	Adj  [][]int // tree adjacency between bag indices
	K    int     // clique-sum order: |Bi ∩ Bj| <= K across tree edges
}

// Bag is one node of the decomposition: a subgraph of G given by vertex and
// edge ID lists.
type Bag struct {
	Vertices []int
	Edges    []int
}

// Validate checks all five properties of Definition 8 plus the k-bound on
// separators:
//  1. bags cover V(G);
//  2. each bag is a subgraph of G (edge endpoints inside the bag);
//  3. adjacent bags intersect in at most K vertices (the partial clique);
//  4. for every vertex, the bags containing it form a connected subtree;
//  5. every edge of G appears in some bag.
func (c *CliqueSumTree) Validate() error {
	t := len(c.Bags)
	if len(c.Adj) != t {
		return fmt.Errorf("structure: %d bags, %d adjacency rows", t, len(c.Adj))
	}
	// Tree shape.
	half := 0
	for _, ns := range c.Adj {
		half += len(ns)
	}
	if t > 0 && half != 2*(t-1) {
		return fmt.Errorf("structure: decomposition has %d half-edges, want tree with %d", half, 2*(t-1))
	}
	if t > 0 {
		seen := make([]bool, t)
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range c.Adj[x] {
				if !seen[y] {
					seen[y] = true
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != t {
			return fmt.Errorf("structure: decomposition tree disconnected")
		}
	}
	inBags := make([][]int, c.G.N())
	vertexSet := make([]map[int]bool, t)
	for bi := range c.Bags {
		vertexSet[bi] = make(map[int]bool, len(c.Bags[bi].Vertices))
		for _, v := range c.Bags[bi].Vertices {
			if v < 0 || v >= c.G.N() {
				return fmt.Errorf("structure: bag %d has invalid vertex %d", bi, v)
			}
			if vertexSet[bi][v] {
				return fmt.Errorf("structure: bag %d lists vertex %d twice", bi, v)
			}
			vertexSet[bi][v] = true
			inBags[v] = append(inBags[v], bi)
		}
	}
	// (1) cover.
	for v, bs := range inBags {
		if len(bs) == 0 {
			return fmt.Errorf("structure: vertex %d in no bag (property 1)", v)
		}
	}
	// (2) bags are subgraphs.
	edgeCovered := make([]bool, c.G.M())
	for bi, b := range c.Bags {
		for _, id := range b.Edges {
			if id < 0 || id >= c.G.M() {
				return fmt.Errorf("structure: bag %d has invalid edge %d", bi, id)
			}
			e := c.G.Edge(id)
			if !vertexSet[bi][e.U] || !vertexSet[bi][e.V] {
				return fmt.Errorf("structure: bag %d edge %d endpoint outside bag (property 2)", bi, id)
			}
			edgeCovered[id] = true
		}
	}
	// (3) separators bounded by K.
	for i := range c.Bags {
		for _, j := range c.Adj[i] {
			if j < i {
				continue
			}
			inter := 0
			for v := range vertexSet[i] {
				if vertexSet[j][v] {
					inter++
				}
			}
			if inter > c.K {
				return fmt.Errorf("structure: bags %d,%d share %d > K=%d vertices (property 3)", i, j, inter, c.K)
			}
		}
	}
	// (4) coherence.
	mark := make([]int, t)
	for i := range mark {
		mark[i] = -1
	}
	for v := 0; v < c.G.N(); v++ {
		for _, b := range inBags[v] {
			mark[b] = v
		}
		start := inBags[v][0]
		visited := map[int]bool{start: true}
		stack := []int{start}
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range c.Adj[x] {
				if mark[y] == v && !visited[y] {
					visited[y] = true
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != len(inBags[v]) {
			return fmt.Errorf("structure: vertex %d bags not coherent (property 4)", v)
		}
	}
	// (5) every edge in some bag.
	for id, ok := range edgeCovered {
		if !ok {
			return fmt.Errorf("structure: edge %d in no bag (property 5)", id)
		}
	}
	return nil
}

// Separator returns the sorted vertex intersection of two adjacent bags.
func (c *CliqueSumTree) Separator(i, j int) []int {
	in := make(map[int]bool, len(c.Bags[i].Vertices))
	for _, v := range c.Bags[i].Vertices {
		in[v] = true
	}
	var out []int
	for _, v := range c.Bags[j].Vertices {
		if in[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// CompletedBag returns bag i's subgraph with every partial clique toward a
// neighbor completed to a full clique (the paper's B⁰ₕ, guaranteed to be in
// the original family F). Returned: the bag-local graph, a local->global
// vertex map, and for each local edge its global edge ID (-1 for added
// clique-completion edges).
func (c *CliqueSumTree) CompletedBag(i int) (local *graph.Graph, toGlobal []int, edgeGlobal []int) {
	toGlobal = append([]int(nil), c.Bags[i].Vertices...)
	sort.Ints(toGlobal)
	toLocal := make(map[int]int, len(toGlobal))
	for li, v := range toGlobal {
		toLocal[v] = li
	}
	local = graph.New(len(toGlobal))
	type pair struct{ a, b int }
	have := make(map[pair]bool)
	addEdge := func(u, v int, w float64, gid int) {
		a, b := toLocal[u], toLocal[v]
		if a > b {
			a, b = b, a
		}
		if a == b || have[pair{a, b}] {
			return
		}
		have[pair{a, b}] = true
		local.AddEdge(a, b, w)
		edgeGlobal = append(edgeGlobal, gid)
	}
	for _, id := range c.Bags[i].Edges {
		e := c.G.Edge(id)
		addEdge(e.U, e.V, e.W, id)
	}
	for _, j := range c.Adj[i] {
		sep := c.Separator(i, j)
		for x := 0; x < len(sep); x++ {
			for y := x + 1; y < len(sep); y++ {
				addEdge(sep[x], sep[y], 1, -1)
			}
		}
	}
	return local, toGlobal, edgeGlobal
}

// BagsMeeting returns the bag indices whose vertex set intersects the given
// part.
func (c *CliqueSumTree) BagsMeeting(part []int) []int {
	in := make(map[int]bool, len(part))
	for _, v := range part {
		in[v] = true
	}
	var out []int
	for bi, b := range c.Bags {
		for _, v := range b.Vertices {
			if in[v] {
				out = append(out, bi)
				break
			}
		}
	}
	return out
}

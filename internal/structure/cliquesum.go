// Package structure defines the Graph Structure Theorem witness objects from
// the paper's Section 1.3.2 — k-clique-sum decomposition trees (Definition 8)
// and almost-embeddable structures (Definitions 2-5 with vortices per
// Definition 4) — together with validators that check every property the
// paper lists. Generators in internal/gen produce graphs carrying these
// witnesses; the shortcut constructions in internal/core consume them.
package structure

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// CliqueSumTree is a k-clique-sum decomposition tree (Definition 8): a tree
// whose nodes are bags (subgraphs of G) such that adjacent bags intersect in
// a partial clique of at most K vertices.
type CliqueSumTree struct {
	G    *graph.Graph
	Bags []Bag
	Adj  [][]int // tree adjacency between bag indices
	K    int     // clique-sum order: |Bi ∩ Bj| <= K across tree edges
}

// Bag is one node of the decomposition: a subgraph of G given by vertex and
// edge ID lists.
type Bag struct {
	Vertices []int
	Edges    []int
}

// Validate checks all five properties of Definition 8 plus the k-bound on
// separators:
//  1. bags cover V(G);
//  2. each bag is a subgraph of G (edge endpoints inside the bag);
//  3. adjacent bags intersect in at most K vertices (the partial clique);
//  4. for every vertex, the bags containing it form a connected subtree;
//  5. every edge of G appears in some bag.
func (c *CliqueSumTree) Validate() error {
	t := len(c.Bags)
	if len(c.Adj) != t {
		return fmt.Errorf("structure: %d bags, %d adjacency rows", t, len(c.Adj))
	}
	// Tree shape.
	half := 0
	for _, ns := range c.Adj {
		half += len(ns)
	}
	if t > 0 && half != 2*(t-1) {
		return fmt.Errorf("structure: decomposition has %d half-edges, want tree with %d", half, 2*(t-1))
	}
	if t > 0 {
		seen := make([]bool, t)
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range c.Adj[x] {
				if !seen[y] {
					seen[y] = true
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != t {
			return fmt.Errorf("structure: decomposition tree disconnected")
		}
	}
	// inBags in CSR layout; per-bag membership tests run against an
	// epoch-stamped arena (one O(1) reset per bag) instead of per-bag maps.
	n := c.G.N()
	off := make([]int32, n+1)
	for bi := range c.Bags {
		for _, v := range c.Bags[bi].Vertices {
			if v < 0 || v >= n {
				return fmt.Errorf("structure: bag %d has invalid vertex %d", bi, v)
			}
			off[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	inBags := make([]int32, off[n])
	fill := make([]int32, n)
	vmark := c.G.AcquireScratch()
	defer c.G.ReleaseScratch(vmark)
	for bi := range c.Bags {
		vmark.Reset()
		for _, v := range c.Bags[bi].Vertices {
			if !vmark.Visit(v) {
				return fmt.Errorf("structure: bag %d lists vertex %d twice", bi, v)
			}
			inBags[off[v]+fill[v]] = int32(bi)
			fill[v]++
		}
	}
	// (1) cover.
	for v := 0; v < n; v++ {
		if off[v] == off[v+1] {
			return fmt.Errorf("structure: vertex %d in no bag (property 1)", v)
		}
	}
	// (2) bags are subgraphs.
	edgeCovered := make([]bool, c.G.M())
	for bi, b := range c.Bags {
		vmark.Reset()
		for _, v := range b.Vertices {
			vmark.Visit(v)
		}
		for _, id := range b.Edges {
			if id < 0 || id >= c.G.M() {
				return fmt.Errorf("structure: bag %d has invalid edge %d", bi, id)
			}
			e := c.G.Edge(id)
			if !vmark.Has(e.U) || !vmark.Has(e.V) {
				return fmt.Errorf("structure: bag %d edge %d endpoint outside bag (property 2)", bi, id)
			}
			edgeCovered[id] = true
		}
	}
	// (3) separators bounded by K.
	for i := range c.Bags {
		vmark.Reset()
		for _, v := range c.Bags[i].Vertices {
			vmark.Visit(v)
		}
		for _, j := range c.Adj[i] {
			if j < i {
				continue
			}
			inter := 0
			for _, v := range c.Bags[j].Vertices {
				if vmark.Has(v) {
					inter++
				}
			}
			if inter > c.K {
				return fmt.Errorf("structure: bags %d,%d share %d > K=%d vertices (property 3)", i, j, inter, c.K)
			}
		}
	}
	// (4) coherence: slot value 0 = contains v, 1 = visited.
	bmark := c.G.AcquireScratch()
	defer c.G.ReleaseScratch(bmark)
	bmark.Grow(t)
	var stack []int
	for v := 0; v < n; v++ {
		bs := inBags[off[v]:off[v+1]]
		bmark.Reset()
		for _, b := range bs {
			bmark.Set(int(b), 0)
		}
		start := int(bs[0])
		bmark.Set(start, 1)
		stack = append(stack[:0], start)
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range c.Adj[x] {
				if st, ok := bmark.Get(y); ok && st == 0 {
					bmark.Set(y, 1)
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != len(bs) {
			return fmt.Errorf("structure: vertex %d bags not coherent (property 4)", v)
		}
	}
	// (5) every edge in some bag.
	for id, ok := range edgeCovered {
		if !ok {
			return fmt.Errorf("structure: edge %d in no bag (property 5)", id)
		}
	}
	return nil
}

// Separator returns the sorted vertex intersection of two adjacent bags.
func (c *CliqueSumTree) Separator(i, j int) []int {
	a, b := c.Bags[i].Vertices, c.Bags[j].Vertices
	if sort.IntsAreSorted(a) && sort.IntsAreSorted(b) {
		// The common case: bag vertex lists are built sorted, so the
		// separator is a linear merge-intersection.
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		out := make([]int, 0, n)
		x, y := 0, 0
		for x < len(a) && y < len(b) {
			switch {
			case a[x] < b[y]:
				x++
			case a[x] > b[y]:
				y++
			default:
				out = append(out, a[x])
				x++
				y++
			}
		}
		return out
	}
	in := make(map[int]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	var out []int
	for _, v := range b {
		if in[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// CompletedBag returns bag i's subgraph with every partial clique toward a
// neighbor completed to a full clique (the paper's B⁰ₕ, guaranteed to be in
// the original family F). Returned: the bag-local graph, a local->global
// vertex map, and for each local edge its global edge ID (-1 for added
// clique-completion edges).
func (c *CliqueSumTree) CompletedBag(i int) (local *graph.Graph, toGlobal []int, edgeGlobal []int) {
	toGlobal = append([]int(nil), c.Bags[i].Vertices...)
	sort.Ints(toGlobal)
	toLocal := make(map[int]int, len(toGlobal))
	for li, v := range toGlobal {
		toLocal[v] = li
	}
	local = graph.New(len(toGlobal))
	type pair struct{ a, b int }
	have := make(map[pair]bool)
	addEdge := func(u, v int, w float64, gid int) {
		a, b := toLocal[u], toLocal[v]
		if a > b {
			a, b = b, a
		}
		if a == b || have[pair{a, b}] {
			return
		}
		have[pair{a, b}] = true
		local.AddEdge(a, b, w)
		edgeGlobal = append(edgeGlobal, gid)
	}
	for _, id := range c.Bags[i].Edges {
		e := c.G.Edge(id)
		addEdge(e.U, e.V, e.W, id)
	}
	for _, j := range c.Adj[i] {
		sep := c.Separator(i, j)
		for x := 0; x < len(sep); x++ {
			for y := x + 1; y < len(sep); y++ {
				addEdge(sep[x], sep[y], 1, -1)
			}
		}
	}
	return local, toGlobal, edgeGlobal
}

// BagsMeeting returns the bag indices whose vertex set intersects the given
// part.
func (c *CliqueSumTree) BagsMeeting(part []int) []int {
	in := make(map[int]bool, len(part))
	for _, v := range part {
		in[v] = true
	}
	var out []int
	for bi, b := range c.Bags {
		for _, v := range b.Vertices {
			if in[v] {
				out = append(out, bi)
				break
			}
		}
	}
	return out
}

package structure_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/structure"
)

func TestCliqueSumOfGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pieces := []*gen.Piece{
		gen.GridPiece(4, 4),
		gen.GridPiece(3, 5),
		gen.GridPiece(4, 4),
		gen.GridPiece(2, 6),
	}
	cs := gen.CliqueSum(pieces, 2, rng)
	if err := cs.CST.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(cs.G) {
		t.Fatal("clique-sum disconnected")
	}
	if len(cs.CST.Bags) != 4 {
		t.Fatalf("bags %d", len(cs.CST.Bags))
	}
	// 2-clique-sums of planar graphs stay planar (density check).
	if !graph.PlanarDensityOK(cs.G) {
		t.Fatal("density violation")
	}
}

func TestCliqueSumOfTriangulations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pieces := []*gen.Piece{
		gen.ApollonianPiece(20, rng),
		gen.ApollonianPiece(15, rng),
		gen.ApollonianPiece(25, rng),
	}
	cs := gen.CliqueSum(pieces, 3, rng)
	if err := cs.CST.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wagner: 3-clique-sums of planar graphs are K5-minor-free.
	found, _ := graph.HasCliqueMinorWitness(cs.G, 5, 300, rng)
	if found {
		t.Fatal("found K5 minor in 3-clique-sum of planar graphs")
	}
}

func TestCliqueSumOfKTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pieces := []*gen.Piece{
		gen.KTreePiece(30, 3, rng),
		gen.KTreePiece(20, 3, rng),
		gen.KTreePiece(25, 3, rng),
	}
	cs := gen.CliqueSum(pieces, 3, rng)
	if err := cs.CST.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueSumValidatorRejects(t *testing.T) {
	g := gen.Path(4)
	// Separator too big: K=0 but bags share a vertex.
	cst := &structure.CliqueSumTree{
		G: g,
		Bags: []structure.Bag{
			{Vertices: []int{0, 1, 2}, Edges: []int{0, 1}},
			{Vertices: []int{2, 3}, Edges: []int{2}},
		},
		Adj: [][]int{{1}, {0}},
		K:   0,
	}
	if err := cst.Validate(); err == nil {
		t.Fatal("accepted oversized separator")
	}
	cst.K = 1
	if err := cst.Validate(); err != nil {
		t.Fatalf("valid decomposition rejected: %v", err)
	}
	// Edge not covered.
	cst.Bags[1].Edges = nil
	if err := cst.Validate(); err == nil {
		t.Fatal("accepted uncovered edge")
	}
	// Incoherent vertex.
	cst2 := &structure.CliqueSumTree{
		G: g,
		Bags: []structure.Bag{
			{Vertices: []int{0, 1, 3}, Edges: []int{0}},
			{Vertices: []int{1, 2}, Edges: []int{1}},
			{Vertices: []int{2, 3}, Edges: []int{2}},
		},
		Adj: [][]int{{1}, {0, 2}, {1}},
		K:   1,
	}
	if err := cst2.Validate(); err == nil {
		t.Fatal("accepted incoherent decomposition (vertex 3)")
	}
}

func TestCompletedBag(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pieces := []*gen.Piece{gen.GridPiece(3, 3), gen.GridPiece(3, 3)}
	cs := gen.CliqueSum(pieces, 2, rng)
	for bi := range cs.CST.Bags {
		local, toGlobal, edgeGlobal := cs.CST.CompletedBag(bi)
		if local.N() != len(cs.CST.Bags[bi].Vertices) {
			t.Fatalf("bag %d: local n mismatch", bi)
		}
		if err := local.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(toGlobal) != local.N() || len(edgeGlobal) != local.M() {
			t.Fatal("mapping lengths wrong")
		}
		// Every real edge maps back correctly.
		for lid, gid := range edgeGlobal {
			if gid == -1 {
				continue
			}
			le, ge := local.Edge(lid), cs.G.Edge(gid)
			lu, lv := toGlobal[le.U], toGlobal[le.V]
			if !((lu == ge.U && lv == ge.V) || (lu == ge.V && lv == ge.U)) {
				t.Fatalf("bag %d local edge %d maps wrong", bi, lid)
			}
		}
	}
}

func TestBagsMeeting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cs := gen.CliqueSum([]*gen.Piece{gen.GridPiece(3, 3), gen.GridPiece(3, 3)}, 1, rng)
	all := cs.CST.BagsMeeting(cs.CST.Bags[0].Vertices)
	if len(all) < 1 {
		t.Fatal("bag 0's own vertices meet no bags")
	}
	if got := cs.CST.BagsMeeting(nil); got != nil {
		t.Fatalf("empty part meets %v", got)
	}
}

func TestAlmostEmbeddablePlanarVortexApex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:        gen.Grid(6, 6),
		NumVortices: 1,
		VortexDepth: 2,
		VortexNodes: 4,
		NumApices:   2,
		ApexDegree:  5,
	}, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(a.G) {
		t.Fatal("disconnected")
	}
	if len(a.Vortices) != 1 || len(a.Apices) != 2 {
		t.Fatalf("vortices %d apices %d", len(a.Vortices), len(a.Apices))
	}
	// Roles respond correctly.
	if !a.IsApex(a.Apices[0]) || a.IsApex(0) {
		t.Fatal("IsApex wrong")
	}
	if a.VortexOf(a.Vortices[0].Internal[0]) != 0 {
		t.Fatal("VortexOf wrong")
	}
	if a.VortexOf(0) != -1 {
		t.Fatal("base vertex assigned to vortex")
	}
}

func TestAlmostEmbeddableTorusBase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:        gen.Torus(5, 5),
		Genus:       1,
		NumVortices: 2,
		VortexDepth: 2,
		VortexNodes: 3,
		NumApices:   1,
		ApexDegree:  4,
	}, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostEmbeddableValidatorRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:        gen.Grid(4, 4),
		NumVortices: 1,
		VortexDepth: 2,
		VortexNodes: 3,
	}, rng)
	// Tamper: claim lower depth than built.
	a.K = 0
	a.Vortices[0].Depth = 0
	// Depth 0 skips coverage checking, so instead tamper the vortex edges:
	// connect an internal node outside its arc via a non-boundary vertex.
	a.K = 2
	a.Vortices[0].Depth = 2
	in := a.Vortices[0].Internal[0]
	// Find a base vertex not on the boundary.
	onBoundary := make(map[int]bool)
	for _, v := range a.Vortices[0].Boundary {
		onBoundary[v] = true
	}
	outside := -1
	for v := 0; v < a.BaseN; v++ {
		if !onBoundary[v] {
			outside = v
			break
		}
	}
	if outside == -1 {
		t.Skip("no off-boundary vertex")
	}
	a.G.AddEdge(in, outside, 1)
	if err := a.Validate(); err == nil {
		t.Fatal("accepted vortex edge leaving the boundary")
	}
}

func TestCycleWithApexIsWheelLike(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := gen.CycleWithApex(20, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := graph.Diameter(a.G); d != 2 {
		t.Fatalf("apexed cycle diameter %d want 2", d)
	}
	if d := graph.Diameter(a.Base); d != 10 {
		t.Fatalf("base cycle diameter %d want 10", d)
	}
}

func TestLowerBoundGraphShape(t *testing.T) {
	lb := gen.LowerBound(8, 16)
	if !graph.IsConnected(lb.G) {
		t.Fatal("disconnected")
	}
	// Paths are disjoint and connected.
	seen := make(map[int]bool)
	for _, p := range lb.Paths {
		if !graph.ConnectedSubset(lb.G, p) {
			t.Fatal("path not connected")
		}
		for _, v := range p {
			if seen[v] {
				t.Fatal("paths overlap")
			}
			seen[v] = true
		}
	}
	// Diameter is logarithmic in ell, not linear.
	if d := graph.Diameter(lb.G); d > 2*(4+2)+2 {
		t.Fatalf("diameter %d too large", d)
	}
}

package tw

import (
	"fmt"
	"sort"

	"repro/internal/embed"
	"repro/internal/graph"
)

// FromEmbeddingByCotree builds a tree decomposition of an embedded planar
// graph from a rooted spanning tree t: one bag per face, containing the
// union of the tree root-paths of the face's vertices, connected along a
// dual spanning tree (cotree). For a graph of diameter D this yields width
// O(deg(face)·D) — the classical "planar treewidth ≤ O(D)" construction used
// by the paper via Eppstein's theorem (Lemma 2's starting point).
// Coherence is closed with RepairCoherence and the result is validated.
func FromEmbeddingByCotree(e *embed.Embedding, t *graph.Tree) (*Decomposition, error) {
	if e.G.M() == 0 {
		d := &Decomposition{G: e.G, Bags: [][]int{{}}, Adj: [][]int{{}}}
		for v := 0; v < e.G.N(); v++ {
			d.Bags[0] = append(d.Bags[0], v)
		}
		d.Adj = make([][]int, 1)
		return d, nil
	}
	if g := e.Genus(); g != 0 {
		return nil, fmt.Errorf("tw: cotree construction requires a planar embedding, genus %d", g)
	}
	cotree, leftover, err := embed.TreeCotree(e, t)
	if err != nil {
		return nil, err
	}
	if len(leftover) != 0 {
		return nil, fmt.Errorf("tw: unexpected leftover edges on planar embedding")
	}
	faces, faceOf := e.Faces()
	d := &Decomposition{G: e.G, Bags: make([][]int, len(faces)), Adj: make([][]int, len(faces))}
	for fi, f := range faces {
		in := make(map[int]bool)
		for _, dart := range f {
			for v := embed.Tail(e.G, dart); v != -1; v = t.Parent[v] {
				in[v] = true
			}
		}
		for v := range in {
			d.Bags[fi] = append(d.Bags[fi], v)
		}
		sort.Ints(d.Bags[fi])
	}
	for _, id := range cotree {
		f1, f2 := faceOf[2*id], faceOf[2*id+1]
		d.Adj[f1] = append(d.Adj[f1], f2)
		d.Adj[f2] = append(d.Adj[f2], f1)
	}
	d.RepairCoherence()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("tw: cotree construction invalid: %w", err)
	}
	return d, nil
}

// AddAttachedVertices extends a valid decomposition of a graph gFull
// restricted to its first baseN vertices into a decomposition of gFull:
// every vertex v >= baseN (vortex-internal nodes and apices, in the paper's
// usage) is added to every bag containing one of its attachment targets
// (Lemma 2's "add v to every bag that intersects P(v)"), with coherence
// repaired afterwards. attach[v-baseN] lists v's targets; a vertex with no
// targets is placed in bag 0.
//
// The decomposition d must currently be over a graph whose vertex set is a
// prefix of gFull's; the returned decomposition is over gFull.
func AddAttachedVertices(d *Decomposition, gFull *graph.Graph, baseN int, attach [][]int) (*Decomposition, error) {
	nd := &Decomposition{G: gFull, Bags: make([][]int, len(d.Bags)), Adj: make([][]int, len(d.Adj))}
	for i := range d.Bags {
		nd.Bags[i] = append([]int(nil), d.Bags[i]...)
		nd.Adj[i] = append([]int(nil), d.Adj[i]...)
	}
	if baseN+len(attach) != gFull.N() {
		return nil, fmt.Errorf("tw: attach lists cover %d vertices, graph has %d beyond base %d",
			len(attach), gFull.N()-baseN, baseN)
	}
	for i, targets := range attach {
		v := baseN + i
		placed := false
		if len(targets) > 0 {
			in := make(map[int]bool, len(targets))
			for _, u := range targets {
				in[u] = true
			}
			for bi, bag := range nd.Bags {
				for _, u := range bag {
					if in[u] {
						nd.Bags[bi] = append(nd.Bags[bi], v)
						placed = true
						break
					}
				}
			}
		}
		if !placed {
			nd.Bags[0] = append(nd.Bags[0], v)
		}
	}
	nd.RepairCoherence()
	if err := nd.Validate(); err != nil {
		return nil, fmt.Errorf("tw: vortex/apex extension invalid: %w", err)
	}
	return nd, nil
}

// TrivialDecomposition puts every vertex in one bag (width n-1): the
// fallback used when no structural witness is available.
func TrivialDecomposition(g *graph.Graph) *Decomposition {
	bag := make([]int, g.N())
	for i := range bag {
		bag[i] = i
	}
	return &Decomposition{G: g, Bags: [][]int{bag}, Adj: make([][]int, 1)}
}

// FromBags builds a decomposition from explicit bags and a parent array over
// bags (parent[root] = -1), validating the result.
func FromBags(g *graph.Graph, bags [][]int, parent []int) (*Decomposition, error) {
	for i, p := range parent {
		if p != -1 && (p < 0 || p >= len(bags)) {
			return nil, fmt.Errorf("tw: bag %d has invalid parent %d", i, p)
		}
	}
	d := &Decomposition{G: g, Bags: bags, Adj: adjFromParents(parent)}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// FromBagsTrusted is FromBags without the O(n+m) validation pass, for
// generators whose bags are correct by construction (their validity is
// covered by the generator's own tests). Parent indices are still
// range-checked.
func FromBagsTrusted(g *graph.Graph, bags [][]int, parent []int) (*Decomposition, error) {
	for i, p := range parent {
		if p != -1 && (p < 0 || p >= len(bags)) {
			return nil, fmt.Errorf("tw: bag %d has invalid parent %d", i, p)
		}
	}
	return &Decomposition{G: g, Bags: bags, Adj: adjFromParents(parent)}, nil
}

// adjFromParents builds symmetric tree adjacency lists from parent pointers
// in CSR layout (one backing array).
func adjFromParents(parent []int) [][]int {
	n := len(parent)
	deg := make([]int32, n)
	for i, p := range parent {
		if p != -1 {
			deg[i]++
			deg[p]++
		}
	}
	adj := make([][]int, n)
	store := make([]int, 0, 2*n)
	for v := 0; v < n; v++ {
		base := len(store)
		store = store[:base+int(deg[v])]
		adj[v] = store[base : base : base+int(deg[v])]
	}
	for i, p := range parent {
		if p != -1 {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], i)
		}
	}
	return adj
}

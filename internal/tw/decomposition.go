// Package tw implements tree decompositions: validation, rooting,
// diameter-based constructions for embedded graphs, the vortex extension of
// the paper's Lemma 2, and the heavy-light chain folding used to compress
// decomposition trees to depth O(log² n) (paper, proof of Theorem 7).
package tw

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Decomposition is a tree decomposition of a graph: a tree whose nodes carry
// vertex bags satisfying the three standard properties (cover, edge
// containment, coherence).
type Decomposition struct {
	G    *graph.Graph
	Bags [][]int // bag vertex lists
	Adj  [][]int // tree adjacency between bag indices
}

// Width returns the decomposition width (max bag size minus one).
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// NumBags returns the number of bags.
func (d *Decomposition) NumBags() int { return len(d.Bags) }

// inBagCSR returns, for every vertex, the bags containing it, as a CSR pair
// (offsets into one backing array) built in two counting passes — no
// per-vertex slice growth. It reports the first duplicated or out-of-range
// vertex it encounters.
func (d *Decomposition) inBagCSR() (lists []int32, off []int32, err error) {
	n := d.G.N()
	off = make([]int32, n+1)
	for bi, bag := range d.Bags {
		for _, v := range bag {
			if v < 0 || v >= n {
				return nil, nil, fmt.Errorf("tw: bag %d contains invalid vertex %d", bi, v)
			}
			off[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	buf := make([]int32, int(off[n])+n) // lists and fill share one allocation
	lists = buf[:off[n]]
	fill := buf[off[n]:]
	for bi, bag := range d.Bags {
		for _, v := range bag {
			lists[off[v]+fill[v]] = int32(bi)
			fill[v]++
		}
	}
	return lists, off, nil
}

// Validate checks that d is a valid tree decomposition of d.G:
// (i) the tree is in fact a tree, (ii) bags cover all vertices,
// (iii) every edge has both endpoints in some bag, and (iv) for each vertex
// the bags containing it form a connected subtree.
func (d *Decomposition) Validate() error {
	t := len(d.Bags)
	if len(d.Adj) != t {
		return fmt.Errorf("tw: %d bags but %d adjacency rows", t, len(d.Adj))
	}
	// Tree check: connected with t-1 edges.
	deg := 0
	for _, ns := range d.Adj {
		deg += len(ns)
	}
	if t > 0 && deg != 2*(t-1) {
		return fmt.Errorf("tw: bag tree has %d half-edges, want %d", deg, 2*(t-1))
	}
	if t > 0 {
		seen := make([]bool, t)
		stack := make([]int, 1, t)
		stack[0] = 0
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range d.Adj[x] {
				if !seen[y] {
					seen[y] = true
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != t {
			return fmt.Errorf("tw: bag tree disconnected (%d of %d reachable)", count, t)
		}
	}
	// Cover: every vertex in some bag, no bag lists a vertex twice. The
	// duplicate check rides on the CSR build plus one scan per bag against an
	// epoch-stamped mark (reset is O(1) per bag). Arenas come from the
	// graph's pool, grown to cover bag indices when needed.
	marks := d.G.AcquireScratch()
	defer d.G.ReleaseScratch(marks)
	marks.Grow(t)
	seenV := d.G.AcquireScratch()
	defer d.G.ReleaseScratch(seenV)
	for bi, bag := range d.Bags {
		seenV.Reset()
		for _, v := range bag {
			if v >= 0 && v < d.G.N() && !seenV.Visit(v) {
				return fmt.Errorf("tw: bag %d lists vertex %d twice", bi, v)
			}
		}
	}
	inBag, off, err := d.inBagCSR()
	if err != nil {
		return err
	}
	for v := 0; v < d.G.N(); v++ {
		if off[v] == off[v+1] {
			return fmt.Errorf("tw: vertex %d in no bag", v)
		}
	}
	// Edge containment: the CSR lists are ascending (bags are scanned in
	// index order), so a common bag is found by a linear merge.
	for id := 0; id < d.G.M(); id++ {
		e := d.G.Edge(id)
		if firstCommonBag(inBag[off[e.U]:off[e.U+1]], inBag[off[e.V]:off[e.V+1]]) == -1 {
			return fmt.Errorf("tw: edge %d {%d,%d} contained in no bag", id, e.U, e.V)
		}
	}
	// Coherence: bags containing v induce a connected subtree.
	var stack []int
	for v := 0; v < d.G.N(); v++ {
		bs := inBag[off[v]:off[v+1]]
		marks.Reset() // slot value: 0 = contains v, 1 = visited
		for _, b := range bs {
			marks.Set(int(b), 0)
		}
		start := int(bs[0])
		stack = append(stack[:0], start)
		marks.Set(start, 1)
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range d.Adj[x] {
				if st, ok := marks.Get(y); ok && st == 0 {
					marks.Set(y, 1)
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != len(bs) {
			return fmt.Errorf("tw: vertex %d bags not coherent (%d of %d connected)", v, count, len(bs))
		}
	}
	return nil
}

// RepairCoherence adds vertices to bags along tree paths so the coherence
// property holds, leaving cover and edge containment intact. Constructions
// that are coherent by design are unaffected; constructions derived from
// geometric arguments (cotree bags) use this as a closing step. It mutates d.
func (d *Decomposition) RepairCoherence() {
	t := len(d.Bags)
	if t == 0 {
		return
	}
	// Root the bag tree at 0 and compute parents/depths.
	parent := make([]int, t)
	depth := make([]int, t)
	order := make([]int, 0, t)
	parent[0] = -1
	stack := []int{0}
	seen := make([]bool, t)
	seen[0] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, x)
		for _, y := range d.Adj[x] {
			if !seen[y] {
				seen[y] = true
				parent[y] = x
				depth[y] = depth[x] + 1
				stack = append(stack, y)
			}
		}
	}
	inBag, off, err := d.inBagCSR()
	if err != nil {
		// Malformed input; leave it for Validate to report.
		return
	}
	// has stamps, per vertex, the bags that currently contain it (the CSR
	// lists plus any added along repair paths); reset is O(1) per vertex.
	has := d.G.AcquireScratch()
	defer d.G.ReleaseScratch(has)
	has.Grow(t)
	for v := 0; v < d.G.N(); v++ {
		bs := inBag[off[v]:off[v+1]]
		if len(bs) <= 1 {
			continue
		}
		has.Reset()
		for _, b := range bs {
			has.Visit(int(b))
		}
		// Union of pairwise tree paths from bs[0] to each other bag.
		base := int(bs[0])
		for _, b32 := range bs[1:] {
			x, y := base, int(b32)
			for x != y {
				if depth[x] < depth[y] {
					x, y = y, x
				}
				if has.Visit(x) {
					d.Bags[x] = append(d.Bags[x], v)
				}
				x = parent[x]
			}
			if has.Visit(x) {
				d.Bags[x] = append(d.Bags[x], v)
			}
		}
	}
	for i := range d.Bags {
		sort.Ints(d.Bags[i])
	}
}

// Rooted is a decomposition with a chosen root and precomputed parent,
// depth, and top-down order over bags.
type Rooted struct {
	D      *Decomposition
	Root   int
	Parent []int
	Depth  []int
	Order  []int // top-down
}

// Root roots the decomposition's bag tree at bag r.
func (d *Decomposition) Root(r int) *Rooted {
	t := len(d.Bags)
	store := make([]int, 3*t) // Parent, Depth, Order share one allocation
	rd := &Rooted{
		D:      d,
		Root:   r,
		Parent: store[0:t:t],
		Depth:  store[t : 2*t : 2*t],
		Order:  store[2*t : 2*t : 3*t],
	}
	for i := range rd.Parent {
		rd.Parent[i] = -2
	}
	rd.Parent[r] = -1
	rd.Order = append(rd.Order, r)
	for head := 0; head < len(rd.Order); head++ {
		x := rd.Order[head]
		for _, y := range d.Adj[x] {
			if rd.Parent[y] == -2 {
				rd.Parent[y] = x
				rd.Depth[y] = rd.Depth[x] + 1
				rd.Order = append(rd.Order, y)
			}
		}
	}
	return rd
}

// Height returns the maximum bag depth.
func (r *Rooted) Height() int {
	h := 0
	for _, d := range r.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// MinDepthBagOfVertex returns, for every vertex, the minimum-depth bag
// containing it (-1 for a vertex in no bag). Computed in one sweep over the
// bags; the per-part HighestBag reduces to a min over this array.
func (r *Rooted) MinDepthBagOfVertex() []int32 {
	out := make([]int32, r.D.G.N())
	for i := range out {
		out[i] = -1
	}
	for bi, bag := range r.D.Bags {
		for _, v := range bag {
			if out[v] == -1 || r.Depth[bi] < r.Depth[out[v]] {
				out[v] = int32(bi)
			}
		}
	}
	return out
}

// HighestBag returns, for each part (vertex set), the bag of minimum depth
// intersecting it, or -1 for an empty part. By coherence, the bags meeting a
// connected part form a subtree, so the highest bag is unique.
func (r *Rooted) HighestBag(part []int) int {
	minBag := r.MinDepthBagOfVertex()
	return r.highestBagFrom(minBag, part)
}

// highestBagFrom is HighestBag against a precomputed MinDepthBagOfVertex
// array, for callers resolving many parts against one rooting.
func (r *Rooted) highestBagFrom(minBag []int32, part []int) int {
	best := -1
	for _, v := range part {
		if b := int(minBag[v]); b != -1 && (best == -1 || r.Depth[b] < r.Depth[best]) {
			best = b
		}
	}
	return best
}

// HighestBags resolves the highest bag of many parts against one rooting,
// sharing the per-vertex sweep.
func (r *Rooted) HighestBags(parts [][]int) []int {
	minBag := r.MinDepthBagOfVertex()
	out := make([]int, len(parts))
	for i, part := range parts {
		out[i] = r.highestBagFrom(minBag, part)
	}
	return out
}

// TopBagOfEdge returns, for every graph edge, the minimum-depth bag
// containing both endpoints (-1 if none, which Validate would reject).
func (r *Rooted) TopBagOfEdge() []int {
	inBag, off, err := r.D.inBagCSR()
	if err != nil {
		// Malformed bags: report every edge as uncontained, as the map-based
		// implementation did.
		out := make([]int, r.D.G.M())
		for i := range out {
			out[i] = -1
		}
		return out
	}
	out := make([]int, r.D.G.M())
	for id := 0; id < r.D.G.M(); id++ {
		e := r.D.G.Edge(id)
		// The CSR lists are ascending; walk the merge-intersection keeping
		// the minimum-depth common bag.
		a, b := inBag[off[e.U]:off[e.U+1]], inBag[off[e.V]:off[e.V+1]]
		best := -1
		x, y := 0, 0
		for x < len(a) && y < len(b) {
			switch {
			case a[x] < b[y]:
				x++
			case a[x] > b[y]:
				y++
			default:
				if bi := int(a[x]); best == -1 || r.Depth[bi] < r.Depth[best] {
					best = bi
				}
				x++
				y++
			}
		}
		out[id] = best
	}
	return out
}

// TopBagOfTreeEdges returns, for every tree edge (given as the parent-edge
// array of a spanning tree, -1 at the root), the minimum-depth bag containing
// both endpoints, indexed by edge ID (-1 for non-tree edges and uncontained
// edges). It does the per-edge work of TopBagOfEdge for just the n-1 tree
// edges instead of all m graph edges.
func (r *Rooted) TopBagOfTreeEdges(parentEdge []int) []int {
	inBag, off, err := r.D.inBagCSR()
	if err != nil {
		out := make([]int, r.D.G.M())
		for i := range out {
			out[i] = -1
		}
		return out
	}
	out := make([]int, r.D.G.M())
	for i := range out {
		out[i] = -1
	}
	for _, id := range parentEdge {
		if id == -1 {
			continue
		}
		e := r.D.G.Edge(id)
		a, b := inBag[off[e.U]:off[e.U+1]], inBag[off[e.V]:off[e.V+1]]
		best := -1
		x, y := 0, 0
		for x < len(a) && y < len(b) {
			switch {
			case a[x] < b[y]:
				x++
			case a[x] > b[y]:
				y++
			default:
				if bi := int(a[x]); best == -1 || r.Depth[bi] < r.Depth[best] {
					best = bi
				}
				x++
				y++
			}
		}
		out[id] = best
	}
	return out
}

// firstCommonBag returns some common element of two ascending lists, or -1.
func firstCommonBag(a, b []int32) int {
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			return int(a[x])
		}
	}
	return -1
}

// Package tw implements tree decompositions: validation, rooting,
// diameter-based constructions for embedded graphs, the vortex extension of
// the paper's Lemma 2, and the heavy-light chain folding used to compress
// decomposition trees to depth O(log² n) (paper, proof of Theorem 7).
package tw

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Decomposition is a tree decomposition of a graph: a tree whose nodes carry
// vertex bags satisfying the three standard properties (cover, edge
// containment, coherence).
type Decomposition struct {
	G    *graph.Graph
	Bags [][]int // bag vertex lists
	Adj  [][]int // tree adjacency between bag indices
}

// Width returns the decomposition width (max bag size minus one).
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// NumBags returns the number of bags.
func (d *Decomposition) NumBags() int { return len(d.Bags) }

// Validate checks that d is a valid tree decomposition of d.G:
// (i) the tree is in fact a tree, (ii) bags cover all vertices,
// (iii) every edge has both endpoints in some bag, and (iv) for each vertex
// the bags containing it form a connected subtree.
func (d *Decomposition) Validate() error {
	t := len(d.Bags)
	if len(d.Adj) != t {
		return fmt.Errorf("tw: %d bags but %d adjacency rows", t, len(d.Adj))
	}
	// Tree check: connected with t-1 edges.
	deg := 0
	for _, ns := range d.Adj {
		deg += len(ns)
	}
	if t > 0 && deg != 2*(t-1) {
		return fmt.Errorf("tw: bag tree has %d half-edges, want %d", deg, 2*(t-1))
	}
	if t > 0 {
		seen := make([]bool, t)
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range d.Adj[x] {
				if !seen[y] {
					seen[y] = true
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != t {
			return fmt.Errorf("tw: bag tree disconnected (%d of %d reachable)", count, t)
		}
	}
	// Cover.
	inBag := make([][]int, d.G.N())
	for bi, bag := range d.Bags {
		seenV := make(map[int]bool, len(bag))
		for _, v := range bag {
			if v < 0 || v >= d.G.N() {
				return fmt.Errorf("tw: bag %d contains invalid vertex %d", bi, v)
			}
			if seenV[v] {
				return fmt.Errorf("tw: bag %d lists vertex %d twice", bi, v)
			}
			seenV[v] = true
			inBag[v] = append(inBag[v], bi)
		}
	}
	for v, bs := range inBag {
		if len(bs) == 0 {
			return fmt.Errorf("tw: vertex %d in no bag", v)
		}
	}
	// Edge containment.
	for id := 0; id < d.G.M(); id++ {
		e := d.G.Edge(id)
		ok := false
		set := make(map[int]bool, len(inBag[e.U]))
		for _, b := range inBag[e.U] {
			set[b] = true
		}
		for _, b := range inBag[e.V] {
			if set[b] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("tw: edge %d {%d,%d} contained in no bag", id, e.U, e.V)
		}
	}
	// Coherence: bags containing v induce a connected subtree.
	mark := make([]int, t)
	for i := range mark {
		mark[i] = -1
	}
	for v := 0; v < d.G.N(); v++ {
		for _, b := range inBag[v] {
			mark[b] = v
		}
		start := inBag[v][0]
		stack := []int{start}
		visited := map[int]bool{start: true}
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range d.Adj[x] {
				if mark[y] == v && !visited[y] {
					visited[y] = true
					count++
					stack = append(stack, y)
				}
			}
		}
		if count != len(inBag[v]) {
			return fmt.Errorf("tw: vertex %d bags not coherent (%d of %d connected)", v, count, len(inBag[v]))
		}
	}
	return nil
}

// RepairCoherence adds vertices to bags along tree paths so the coherence
// property holds, leaving cover and edge containment intact. Constructions
// that are coherent by design are unaffected; constructions derived from
// geometric arguments (cotree bags) use this as a closing step. It mutates d.
func (d *Decomposition) RepairCoherence() {
	t := len(d.Bags)
	if t == 0 {
		return
	}
	// Root the bag tree at 0 and compute parents/depths.
	parent := make([]int, t)
	depth := make([]int, t)
	order := make([]int, 0, t)
	parent[0] = -1
	stack := []int{0}
	seen := make([]bool, t)
	seen[0] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, x)
		for _, y := range d.Adj[x] {
			if !seen[y] {
				seen[y] = true
				parent[y] = x
				depth[y] = depth[x] + 1
				stack = append(stack, y)
			}
		}
	}
	inBag := make([][]int, d.G.N())
	for bi, bag := range d.Bags {
		for _, v := range bag {
			inBag[v] = append(inBag[v], bi)
		}
	}
	present := make([]map[int]bool, t)
	for i, bag := range d.Bags {
		present[i] = make(map[int]bool, len(bag))
		for _, v := range bag {
			present[i][v] = true
		}
	}
	for v := 0; v < d.G.N(); v++ {
		bs := inBag[v]
		if len(bs) <= 1 {
			continue
		}
		// Union of pairwise tree paths from bs[0] to each other bag.
		base := bs[0]
		for _, b := range bs[1:] {
			x, y := base, b
			for x != y {
				if depth[x] < depth[y] {
					x, y = y, x
				}
				if !present[x][v] {
					present[x][v] = true
					d.Bags[x] = append(d.Bags[x], v)
				}
				x = parent[x]
			}
			if !present[x][v] {
				present[x][v] = true
				d.Bags[x] = append(d.Bags[x], v)
			}
		}
	}
	for i := range d.Bags {
		sort.Ints(d.Bags[i])
	}
}

// Rooted is a decomposition with a chosen root and precomputed parent,
// depth, and top-down order over bags.
type Rooted struct {
	D      *Decomposition
	Root   int
	Parent []int
	Depth  []int
	Order  []int // top-down
}

// Root roots the decomposition's bag tree at bag r.
func (d *Decomposition) Root(r int) *Rooted {
	t := len(d.Bags)
	rd := &Rooted{
		D:      d,
		Root:   r,
		Parent: make([]int, t),
		Depth:  make([]int, t),
	}
	for i := range rd.Parent {
		rd.Parent[i] = -2
	}
	rd.Parent[r] = -1
	queue := []int{r}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		rd.Order = append(rd.Order, x)
		for _, y := range d.Adj[x] {
			if rd.Parent[y] == -2 {
				rd.Parent[y] = x
				rd.Depth[y] = rd.Depth[x] + 1
				queue = append(queue, y)
			}
		}
	}
	return rd
}

// Height returns the maximum bag depth.
func (r *Rooted) Height() int {
	h := 0
	for _, d := range r.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// HighestBag returns, for each part (vertex set), the bag of minimum depth
// intersecting it, or -1 for an empty part. By coherence, the bags meeting a
// connected part form a subtree, so the highest bag is unique.
func (r *Rooted) HighestBag(part []int) int {
	in := make(map[int]bool, len(part))
	for _, v := range part {
		in[v] = true
	}
	best := -1
	for bi, bag := range r.D.Bags {
		hit := false
		for _, v := range bag {
			if in[v] {
				hit = true
				break
			}
		}
		if hit && (best == -1 || r.Depth[bi] < r.Depth[best]) {
			best = bi
		}
	}
	return best
}

// TopBagOfEdge returns, for every graph edge, the minimum-depth bag
// containing both endpoints (-1 if none, which Validate would reject).
func (r *Rooted) TopBagOfEdge() []int {
	inBag := make([][]int, r.D.G.N())
	for bi, bag := range r.D.Bags {
		for _, v := range bag {
			inBag[v] = append(inBag[v], bi)
		}
	}
	out := make([]int, r.D.G.M())
	for id := 0; id < r.D.G.M(); id++ {
		e := r.D.G.Edge(id)
		set := make(map[int]bool, len(inBag[e.U]))
		for _, b := range inBag[e.U] {
			set[b] = true
		}
		best := -1
		for _, b := range inBag[e.V] {
			if set[b] && (best == -1 || r.Depth[b] < r.Depth[best]) {
				best = b
			}
		}
		out[id] = best
	}
	return out
}

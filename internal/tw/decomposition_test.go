package tw_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tw"
)

func TestValidateAcceptsKTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 5} {
		kt := gen.KTree(50, k, rng)
		if err := kt.Decomp.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if w := kt.Decomp.Width(); w != k {
			t.Fatalf("k=%d: width %d", k, w)
		}
	}
}

func TestValidateRejectsBadDecompositions(t *testing.T) {
	g := gen.Path(4)
	// Missing vertex.
	d := &tw.Decomposition{G: g, Bags: [][]int{{0, 1}, {1, 2}}, Adj: [][]int{{1}, {0}}}
	if err := d.Validate(); err == nil {
		t.Fatal("accepted missing vertex")
	}
	// Missing edge.
	d = &tw.Decomposition{G: g, Bags: [][]int{{0, 1}, {1, 2}, {3}}, Adj: [][]int{{1}, {0, 2}, {1}}}
	if err := d.Validate(); err == nil {
		t.Fatal("accepted missing edge")
	}
	// Incoherent: vertex 1 in bags 0 and 2 but not 1.
	d = &tw.Decomposition{G: g, Bags: [][]int{{0, 1}, {2, 3}, {1, 2}}, Adj: [][]int{{1}, {0, 2}, {1}}}
	if err := d.Validate(); err == nil {
		t.Fatal("accepted incoherent decomposition")
	}
	// Not a tree.
	d = &tw.Decomposition{G: g, Bags: [][]int{{0, 1}, {1, 2}, {2, 3}}, Adj: [][]int{{1, 2}, {0, 2}, {0, 1}}}
	if err := d.Validate(); err == nil {
		t.Fatal("accepted cyclic bag graph")
	}
}

func TestRepairCoherence(t *testing.T) {
	g := gen.Path(4)
	d := &tw.Decomposition{
		G:    g,
		Bags: [][]int{{0, 1}, {2, 3}, {1, 2}},
		Adj:  [][]int{{1}, {0, 2}, {1}},
	}
	d.RepairCoherence()
	if err := d.Validate(); err != nil {
		t.Fatalf("repair did not fix coherence: %v", err)
	}
}

func TestCotreeDecompositionOnPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		e    *gen.Embedded
	}{
		{"grid5x5", gen.Grid(5, 5)},
		{"grid2x20", gen.Grid(2, 20)},
		{"wheel20", gen.Wheel(20)},
		{"outerplanar", gen.Outerplanar(30, 10, rng)},
		{"apollonian", apollonianEmbedded(40, rng)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := graph.BFSTree(tc.e.G, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := tw.FromEmbeddingByCotree(tc.e.Emb, tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			// Width should be bounded by O(maxFace * height).
			if w := d.Width(); w > 8*(tr.Height()+1) {
				t.Fatalf("width %d too large for tree height %d", w, tr.Height())
			}
		})
	}
}

func TestCotreeRejectsNonPlanar(t *testing.T) {
	e := gen.Torus(4, 4)
	tr, _ := graph.BFSTree(e.G, 0)
	if _, err := tw.FromEmbeddingByCotree(e.Emb, tr); err == nil {
		t.Fatal("accepted torus embedding")
	}
}

func TestRootedHighestBagAndTopEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kt := gen.KTree(60, 3, rng)
	r := kt.Decomp.Root(0)
	if r.Height() < 1 {
		t.Fatal("degenerate rooted decomposition")
	}
	// HighestBag of a whole-graph part is the root.
	all := make([]int, kt.G.N())
	for i := range all {
		all[i] = i
	}
	if hb := r.HighestBag(all); hb != 0 {
		t.Fatalf("highest bag of V = %d want root 0", hb)
	}
	if hb := r.HighestBag(nil); hb != -1 {
		t.Fatalf("highest bag of empty part = %d want -1", hb)
	}
	tops := r.TopBagOfEdge()
	for id, b := range tops {
		if b == -1 {
			t.Fatalf("edge %d has no containing bag", id)
		}
		e := kt.G.Edge(id)
		inU, inV := false, false
		for _, v := range kt.Decomp.Bags[b] {
			if v == e.U {
				inU = true
			}
			if v == e.V {
				inV = true
			}
		}
		if !inU || !inV {
			t.Fatalf("top bag %d of edge %d does not contain it", b, id)
		}
	}
}

func TestPartialKTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pk := gen.PartialKTree(80, 3, 0.4, rng)
	if !graph.IsConnected(pk.G) {
		t.Fatal("partial k-tree disconnected")
	}
	if err := pk.Decomp.Validate(); err != nil {
		t.Fatal(err)
	}
	full := gen.KTree(80, 3, rand.New(rand.NewSource(4)))
	if pk.G.M() >= full.G.M() {
		t.Fatal("no edges were dropped")
	}
}

// apollonianEmbedded returns an Apollonian network with its embedding
// materialized (NewApollonian defers it).
func apollonianEmbedded(n int, rng *rand.Rand) *gen.Embedded {
	a := gen.NewApollonian(n, rng)
	a.EnsureEmbedding()
	return &a.Embedded
}

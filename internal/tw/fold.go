package tw

import "fmt"

// Folded is the result of compressing a rooted tree to depth O(log² n) by
// heavy-light decomposition plus recursive chain folding, exactly the scheme
// in the paper's proof of Theorem 7 (Figure 4): each heavy chain is folded
// into a balanced binary tree whose root group holds the chain's first,
// middle, and last nodes, and chain roots re-attach to the group holding
// their original parent.
//
// Each group holds at most 3 original nodes; following the paper, a group
// has at most two children reached by "double edges" (the two recursive
// halves of its own chain fold); all other children attach by ordinary
// edges.
type Folded struct {
	Groups  [][]int // group -> original nodes (1..3)
	Parent  []int   // group tree; -1 at root
	GroupOf []int   // original node -> its group
	Depth   []int   // group depths
}

// Fold compresses the rooted tree given by parent pointers (parent[root] ==
// -1). It panics on malformed input since callers construct the tree.
func Fold(parent []int, root int) *Folded {
	n := len(parent)
	if n == 0 {
		return &Folded{}
	}
	if parent[root] != -1 {
		panic(fmt.Sprintf("tw.Fold: root %d has parent %d", root, parent[root]))
	}
	children := make([][]int, n)
	for v, p := range parent {
		if p != -1 {
			children[p] = append(children[p], v)
		}
	}
	// Subtree sizes bottom-up via topological order.
	order := make([]int, 0, n)
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, children[v]...)
	}
	if len(order) != n {
		panic("tw.Fold: parent array does not form a tree")
	}
	size := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if parent[v] != -1 {
			size[parent[v]] += size[v]
		}
	}
	// Heavy chains: heavy[v] = child with max subtree.
	heavy := make([]int, n)
	for v := range heavy {
		heavy[v] = -1
		best := -1
		for _, c := range children[v] {
			if size[c] > best {
				best = size[c]
				heavy[v] = c
			}
		}
	}
	f := &Folded{GroupOf: make([]int, n)}
	for i := range f.GroupOf {
		f.GroupOf[i] = -1
	}
	newGroup := func(nodes []int, parentGroup int) int {
		gi := len(f.Groups)
		f.Groups = append(f.Groups, nodes)
		f.Parent = append(f.Parent, parentGroup)
		d := 0
		if parentGroup != -1 {
			d = f.Depth[parentGroup] + 1
		}
		f.Depth = append(f.Depth, d)
		for _, v := range nodes {
			f.GroupOf[v] = gi
		}
		return gi
	}
	// foldChain folds chain[lo..hi] (inclusive) into a binary tree of
	// groups, returning the root group, attached under parentGroup.
	var foldChain func(chain []int, lo, hi, parentGroup int) int
	foldChain = func(chain []int, lo, hi, parentGroup int) int {
		switch hi - lo {
		case 0:
			return newGroup([]int{chain[lo]}, parentGroup)
		case 1:
			return newGroup([]int{chain[lo], chain[hi]}, parentGroup)
		}
		mid := (lo + hi) / 2
		gi := newGroup([]int{chain[lo], chain[mid], chain[hi]}, parentGroup)
		if lo+1 <= mid-1 {
			foldChain(chain, lo+1, mid-1, gi)
		}
		if mid+1 <= hi-1 {
			foldChain(chain, mid+1, hi-1, gi)
		}
		return gi
	}
	// Process chains in top-down order of their heads so that the parent
	// group of a chain head's original parent already exists.
	for _, v := range order {
		isHead := parent[v] == -1 || heavy[parent[v]] != v
		if !isHead {
			continue
		}
		var chain []int
		for x := v; x != -1; x = heavy[x] {
			chain = append(chain, x)
		}
		pg := -1
		if parent[v] != -1 {
			pg = f.GroupOf[parent[v]]
			if pg == -1 {
				panic("tw.Fold: parent group not yet created")
			}
		}
		foldChain(chain, 0, len(chain)-1, pg)
	}
	return f
}

// IdentityFold wraps a rooted tree as a Folded with singleton groups and no
// depth compression — the Lemma 1 baseline whose congestion carries the raw
// decomposition depth d_DT. Used by the folding-ablation experiment (E10).
func IdentityFold(parent []int, root int) *Folded {
	n := len(parent)
	f := &Folded{
		Groups:  make([][]int, n),
		Parent:  append([]int(nil), parent...),
		GroupOf: make([]int, n),
		Depth:   make([]int, n),
	}
	for v := 0; v < n; v++ {
		f.Groups[v] = []int{v}
		f.GroupOf[v] = v
	}
	// Depths top-down.
	children := make([][]int, n)
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range children[v] {
			f.Depth[c] = f.Depth[v] + 1
			stack = append(stack, c)
		}
	}
	return f
}

// Height returns the maximum group depth.
func (f *Folded) Height() int {
	h := 0
	for _, d := range f.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// FoldRooted folds a rooted tree decomposition: groups become merged bags
// (unions), producing a new valid decomposition of depth O(log² n) and
// width at most 3·(w+1)-1. The returned Rooted is over the new
// decomposition.
func FoldRooted(r *Rooted) (*Rooted, *Folded, error) {
	f := Fold(r.Parent, r.Root)
	nd := &Decomposition{G: r.D.G, Bags: make([][]int, len(f.Groups)), Adj: make([][]int, len(f.Groups))}
	for gi, nodes := range f.Groups {
		in := make(map[int]bool)
		for _, bi := range nodes {
			for _, v := range r.D.Bags[bi] {
				in[v] = true
			}
		}
		for v := range in {
			nd.Bags[gi] = append(nd.Bags[gi], v)
		}
	}
	rootGroup := f.GroupOf[r.Root]
	for gi, p := range f.Parent {
		if p != -1 {
			nd.Adj[gi] = append(nd.Adj[gi], p)
			nd.Adj[p] = append(nd.Adj[p], gi)
		}
	}
	// Folding a chain can break coherence across groups; repair then verify.
	nd.RepairCoherence()
	if err := nd.Validate(); err != nil {
		return nil, nil, fmt.Errorf("tw.FoldRooted: %w", err)
	}
	return nd.Root(rootGroup), f, nil
}

package tw

import "fmt"

// Folded is the result of compressing a rooted tree to depth O(log² n) by
// heavy-light decomposition plus recursive chain folding, exactly the scheme
// in the paper's proof of Theorem 7 (Figure 4): each heavy chain is folded
// into a balanced binary tree whose root group holds the chain's first,
// middle, and last nodes, and chain roots re-attach to the group holding
// their original parent.
//
// Each group holds at most 3 original nodes; following the paper, a group
// has at most two children reached by "double edges" (the two recursive
// halves of its own chain fold); all other children attach by ordinary
// edges.
type Folded struct {
	Groups  [][]int // group -> original nodes (1..3)
	Parent  []int   // group tree; -1 at root
	GroupOf []int   // original node -> its group
	Depth   []int   // group depths
}

// Fold compresses the rooted tree given by parent pointers (parent[root] ==
// -1). It panics on malformed input since callers construct the tree.
func Fold(parent []int, root int) *Folded {
	n := len(parent)
	if n == 0 {
		return &Folded{}
	}
	if parent[root] != -1 {
		panic(fmt.Sprintf("tw.Fold: root %d has parent %d", root, parent[root]))
	}
	// Working arrays (degrees, children CSR store, order, size, heavy) are
	// slices of one backing allocation.
	work := make([]int, 5*n)
	deg := work[4*n : 5*n]
	for _, p := range parent {
		if p != -1 {
			deg[p]++
		}
	}
	childStore := work[0:0:n]
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		base := len(childStore)
		childStore = childStore[:base+int(deg[v])]
		children[v] = childStore[base : base : base+int(deg[v])]
	}
	for v, p := range parent {
		if p != -1 {
			children[p] = append(children[p], v)
		}
	}
	// Subtree sizes bottom-up via topological order.
	order := work[n : n : 2*n]
	order = append(order, root)
	for head := 0; head < len(order); head++ {
		order = append(order, children[order[head]]...)
	}
	if len(order) != n {
		panic("tw.Fold: parent array does not form a tree")
	}
	size := work[2*n : 3*n]
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if parent[v] != -1 {
			size[parent[v]] += size[v]
		}
	}
	// Heavy chains: heavy[v] = child with max subtree.
	heavy := work[3*n : 4*n]
	for v := range heavy {
		heavy[v] = -1
		best := -1
		for _, c := range children[v] {
			if size[c] > best {
				best = size[c]
				heavy[v] = c
			}
		}
	}
	// Folded's int arrays (Parent, GroupOf, Depth, group node-lists) are
	// slices of one backing allocation.
	fstore := make([]int, 4*n)
	f := &Folded{
		Groups:  make([][]int, 0, n),
		Parent:  fstore[0:0:n],
		GroupOf: fstore[n : 2*n : 2*n],
		Depth:   fstore[2*n : 2*n : 3*n],
	}
	for i := range f.GroupOf {
		f.GroupOf[i] = -1
	}
	// All group node-lists (1..3 nodes each, n nodes total) are slices of one
	// backing array.
	nodeStore := fstore[3*n : 3*n : 4*n]
	newGroup := func(parentGroup int, nodes ...int) int {
		gi := len(f.Groups)
		start := len(nodeStore)
		nodeStore = append(nodeStore, nodes...)
		f.Groups = append(f.Groups, nodeStore[start:len(nodeStore):len(nodeStore)])
		f.Parent = append(f.Parent, parentGroup)
		d := 0
		if parentGroup != -1 {
			d = f.Depth[parentGroup] + 1
		}
		f.Depth = append(f.Depth, d)
		for _, v := range nodes {
			f.GroupOf[v] = gi
		}
		return gi
	}
	// foldChain folds chain[lo..hi] (inclusive) into a binary tree of
	// groups, returning the root group, attached under parentGroup.
	var foldChain func(chain []int, lo, hi, parentGroup int) int
	foldChain = func(chain []int, lo, hi, parentGroup int) int {
		switch hi - lo {
		case 0:
			return newGroup(parentGroup, chain[lo])
		case 1:
			return newGroup(parentGroup, chain[lo], chain[hi])
		}
		mid := (lo + hi) / 2
		gi := newGroup(parentGroup, chain[lo], chain[mid], chain[hi])
		if lo+1 <= mid-1 {
			foldChain(chain, lo+1, mid-1, gi)
		}
		if mid+1 <= hi-1 {
			foldChain(chain, mid+1, hi-1, gi)
		}
		return gi
	}
	// Process chains in top-down order of their heads so that the parent
	// group of a chain head's original parent already exists.
	var chain []int
	for _, v := range order {
		isHead := parent[v] == -1 || heavy[parent[v]] != v
		if !isHead {
			continue
		}
		chain = chain[:0]
		for x := v; x != -1; x = heavy[x] {
			chain = append(chain, x)
		}
		pg := -1
		if parent[v] != -1 {
			pg = f.GroupOf[parent[v]]
			if pg == -1 {
				panic("tw.Fold: parent group not yet created")
			}
		}
		foldChain(chain, 0, len(chain)-1, pg)
	}
	return f
}

// IdentityFold wraps a rooted tree as a Folded with singleton groups and no
// depth compression — the Lemma 1 baseline whose congestion carries the raw
// decomposition depth d_DT. Used by the folding-ablation experiment (E10).
func IdentityFold(parent []int, root int) *Folded {
	n := len(parent)
	f := &Folded{
		Groups:  make([][]int, n),
		Parent:  append([]int(nil), parent...),
		GroupOf: make([]int, n),
		Depth:   make([]int, n),
	}
	for v := 0; v < n; v++ {
		f.Groups[v] = []int{v}
		f.GroupOf[v] = v
	}
	// Depths top-down.
	children := make([][]int, n)
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range children[v] {
			f.Depth[c] = f.Depth[v] + 1
			stack = append(stack, c)
		}
	}
	return f
}

// Height returns the maximum group depth.
func (f *Folded) Height() int {
	h := 0
	for _, d := range f.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// FoldRooted folds a rooted tree decomposition: groups become merged bags
// (unions), producing a new valid decomposition of depth O(log² n) and
// width at most 3·(w+1)-1. The returned Rooted is over the new
// decomposition.
func FoldRooted(r *Rooted) (*Rooted, *Folded, error) {
	f := Fold(r.Parent, r.Root)
	nd := &Decomposition{G: r.D.G, Bags: make([][]int, len(f.Groups))}
	seen := r.D.G.AcquireScratch()
	defer r.D.G.ReleaseScratch(seen)
	total := 0
	for _, bag := range r.D.Bags {
		total += len(bag)
	}
	store := make([]int, 0, total) // all merged bags share one backing array
	for gi, nodes := range f.Groups {
		seen.Reset()
		base := len(store)
		for _, bi := range nodes {
			for _, v := range r.D.Bags[bi] {
				if seen.Visit(v) {
					store = append(store, v)
				}
			}
		}
		nd.Bags[gi] = store[base:len(store):len(store)]
	}
	rootGroup := f.GroupOf[r.Root]
	nd.Adj = adjFromParents(f.Parent)
	// Folding a chain can break coherence across groups; repair it. The
	// repaired result is a valid decomposition by construction (covered by
	// TestFoldRootedStillValid); hot paths no longer pay for a full
	// re-validation here.
	nd.RepairCoherence()
	if debugValidate {
		if err := nd.Validate(); err != nil {
			return nil, nil, fmt.Errorf("tw.FoldRooted: %w", err)
		}
	}
	return nd.Root(rootGroup), f, nil
}

// debugValidate re-enables the defensive Validate call inside FoldRooted.
// Tests flip this on via the build-independent helper in fold_test.go-style
// property tests; production hot paths keep it off.
var debugValidate = false

// FoldSummary folds the rooted decomposition and computes, WITHOUT
// materializing the folded-and-repaired bags, everything the treewidth
// shortcut construction needs from them:
//
//   - minGroup[v]: the minimum-depth folded group whose repaired bag
//     contains v (-1 for a vertex in no bag). After coherence repair, the
//     groups containing v form the Steiner closure (union of pairwise tree
//     paths) of v's pre-repair groups, and the closure's root is their LCA;
//   - width: the width of the folded+repaired decomposition, via per-group
//     membership counts accumulated along the same Steiner walks.
//
// Both agree exactly with FoldRooted + RepairCoherence on the materialized
// decomposition (see the equivalence test in fold_test.go), at a fraction
// of the cost: no bag unions, no bag sorting, no repaired-bag CSR.
func (r *Rooted) FoldSummary() (f *Folded, minGroup []int32, width int, err error) {
	f = Fold(r.Parent, r.Root)
	inBag, off, err := r.D.inBagCSR()
	if err != nil {
		return nil, nil, 0, err
	}
	n := r.D.G.N()
	minGroup = make([]int32, n)
	count := make([]int32, len(f.Groups))
	mark := r.D.G.AcquireScratch()
	defer r.D.G.ReleaseScratch(mark)
	mark.Grow(len(f.Groups))
	for v := 0; v < n; v++ {
		bs := inBag[off[v]:off[v+1]]
		if len(bs) == 0 {
			minGroup[v] = -1
			continue
		}
		mark.Reset()
		base := f.GroupOf[bs[0]]
		mark.Visit(base)
		count[base]++
		best := base
		for _, b := range bs[1:] {
			// Walk the pairwise path base..GroupOf[b], counting each group
			// first entered by this vertex (mirrors RepairCoherence's
			// repair walk without touching bag storage).
			x, y := base, f.GroupOf[int(b)]
			for x != y {
				if f.Depth[x] < f.Depth[y] {
					x, y = y, x
				}
				if mark.Visit(x) {
					count[x]++
					if f.Depth[x] < f.Depth[best] {
						best = x
					}
				}
				x = f.Parent[x]
			}
			if mark.Visit(x) {
				count[x]++
			}
			if f.Depth[x] < f.Depth[best] {
				best = x
			}
		}
		minGroup[v] = int32(best)
	}
	maxCount := int32(0)
	for _, c := range count {
		if c > maxCount {
			maxCount = c
		}
	}
	return f, minGroup, int(maxCount) - 1, nil
}

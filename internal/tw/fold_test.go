package tw_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/tw"
)

// logSq returns an O(log² n) budget with explicit constant: (log2 n + 2)².
func logSq(n int) int {
	lg := 1
	for 1<<lg < n {
		lg++
	}
	return (lg + 2) * (lg + 2)
}

func TestFoldPathDepth(t *testing.T) {
	// A path of t nodes folds to depth O(log t).
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		parent := make([]int, n)
		parent[0] = -1
		for i := 1; i < n; i++ {
			parent[i] = i - 1
		}
		f := tw.Fold(parent, 0)
		lg := 1
		for 1<<lg < n {
			lg++
		}
		if f.Height() > lg+2 {
			t.Fatalf("n=%d: folded path height %d > %d", n, f.Height(), lg+2)
		}
		assertFoldShape(t, parent, f)
	}
}

func TestFoldCaterpillarAndRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(2000)
		parent := make([]int, n)
		parent[0] = -1
		for i := 1; i < n; i++ {
			// Mix of path-like and random attachments to stress chains.
			if rng.Float64() < 0.7 {
				parent[i] = i - 1
			} else {
				parent[i] = rng.Intn(i)
			}
		}
		f := tw.Fold(parent, 0)
		if f.Height() > logSq(n) {
			t.Fatalf("n=%d: folded height %d exceeds log² bound %d", n, f.Height(), logSq(n))
		}
		assertFoldShape(t, parent, f)
	}
}

// assertFoldShape checks structural invariants of a fold: groups partition
// the nodes with size <= 3, and for every original parent-child pair the two
// groups are identical or in ancestor-descendant relation... specifically
// the group of a child must be a descendant-or-self of the group of some
// node adjacent in the folded tree (weaker sanity: group tree is connected
// and GroupOf is total).
func assertFoldShape(t *testing.T, parent []int, f *tw.Folded) {
	t.Helper()
	n := len(parent)
	seen := make([]bool, n)
	for gi, nodes := range f.Groups {
		if len(nodes) == 0 || len(nodes) > 3 {
			t.Fatalf("group %d has %d nodes", gi, len(nodes))
		}
		for _, v := range nodes {
			if seen[v] {
				t.Fatalf("node %d in two groups", v)
			}
			seen[v] = true
			if f.GroupOf[v] != gi {
				t.Fatalf("GroupOf[%d] inconsistent", v)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("node %d unassigned", v)
		}
	}
	// Folded parent pointers form a tree rooted at a single -1 group.
	roots := 0
	for gi, p := range f.Parent {
		if p == -1 {
			roots++
		} else if p < 0 || p >= len(f.Groups) {
			t.Fatalf("group %d has invalid parent %d", gi, p)
		} else if f.Depth[gi] != f.Depth[p]+1 {
			t.Fatalf("group %d depth %d but parent depth %d", gi, f.Depth[gi], f.Depth[p])
		}
	}
	if len(f.Groups) > 0 && roots != 1 {
		t.Fatalf("%d root groups", roots)
	}
}

func TestFoldRootedPreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []struct {
		name string
		kt   *gen.KTreeGraph
	}{
		{"k2", gen.KTree(300, 2, rng)},
		{"k4", gen.KTree(500, 4, rng)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.kt.Decomp.Root(0)
			fr, f, err := tw.FoldRooted(r)
			if err != nil {
				t.Fatal(err)
			}
			if err := fr.D.Validate(); err != nil {
				t.Fatalf("folded decomposition invalid: %v", err)
			}
			n := tc.kt.Decomp.NumBags()
			if fr.Height() > logSq(n) {
				t.Fatalf("folded height %d > log² bound %d (bags=%d, orig height %d)",
					fr.Height(), logSq(n), n, r.Height())
			}
			// Width grows by at most 3x (three bags merged per group).
			if fr.D.Width()+1 > 3*(tc.kt.Decomp.Width()+1) {
				t.Fatalf("folded width %d > 3x original %d", fr.D.Width(), tc.kt.Decomp.Width())
			}
			if f.Height() != fr.Height() {
				t.Fatalf("Folded and Rooted heights disagree: %d vs %d", f.Height(), fr.Height())
			}
		})
	}
}

func TestFoldRootedOnDeepPathDecomposition(t *testing.T) {
	// A long path graph has a path decomposition of depth n; folding must
	// crush the depth while staying valid.
	n := 800
	g := gen.Path(n)
	bags := make([][]int, n-1)
	parent := make([]int, n-1)
	for i := 0; i+1 < n; i++ {
		bags[i] = []int{i, i + 1}
		parent[i] = i - 1 // -1 for i==0
	}
	d, err := tw.FromBags(g, bags, parent)
	if err != nil {
		t.Fatal(err)
	}
	r := d.Root(0)
	if r.Height() != n-2 {
		t.Fatalf("expected deep decomposition, height %d", r.Height())
	}
	fr, _, err := tw.FoldRooted(r)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Height() > logSq(n) {
		t.Fatalf("folded height %d", fr.Height())
	}
	if err := fr.D.Validate(); err != nil {
		t.Fatal(err)
	}
}

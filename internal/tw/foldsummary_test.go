package tw

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestFoldSummaryMatchesMaterializedFold verifies the FoldSummary
// equivalence on which FromTreewidth relies: for random valid
// decompositions, the per-vertex minimum-depth repaired group and the
// folded width computed WITHOUT materializing bags must match FoldRooted +
// RepairCoherence on the materialized decomposition.
func TestFoldSummaryMatchesMaterializedFold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		d := randomCoherentDecomposition(rng)
		rooted := d.Root(0)
		f, minGroup, width, err := rooted.FoldSummary()
		if err != nil {
			t.Fatal(err)
		}
		// Materialized reference.
		prevDebug := debugValidate
		debugValidate = true
		matRooted, matFold, err := FoldRooted(rooted)
		debugValidate = prevDebug
		if err != nil {
			t.Fatal(err)
		}
		if got, want := width, matRooted.D.Width(); got != want {
			t.Fatalf("trial %d: summary width %d != materialized width %d", trial, got, want)
		}
		if got, want := f.Height(), matRooted.Height(); got != want {
			t.Fatalf("trial %d: summary height %d != materialized height %d", trial, got, want)
		}
		_ = matFold
		ref := matRooted.MinDepthBagOfVertex()
		for v := range minGroup {
			if minGroup[v] != ref[v] {
				t.Fatalf("trial %d vertex %d: summary min group %d != materialized %d",
					trial, v, minGroup[v], ref[v])
			}
		}
	}
}

// randomCoherentDecomposition builds a random graph with a valid tree
// decomposition: a random k-tree-like elimination process where vertex v's
// bag is {v} plus a random subset of an earlier bag.
func randomCoherentDecomposition(rng *rand.Rand) *Decomposition {
	n := 8 + rng.Intn(30)
	g := graph.New(n)
	bags := make([][]int, n)
	parent := make([]int, n)
	bags[0] = []int{0}
	parent[0] = -1
	for v := 1; v < n; v++ {
		pb := rng.Intn(v)
		parent[v] = pb
		// Random subset of the parent bag, plus v.
		bag := []int{v}
		for _, u := range bags[pb] {
			if rng.Intn(2) == 0 {
				bag = append(bag, u)
			}
		}
		bags[v] = bag
		// Add edges v-u so edge containment has content.
		for _, u := range bag[1:] {
			if !g.HasEdge(v, u) {
				g.AddEdge(v, u, 1)
			}
		}
	}
	d, err := FromBags(g, bags, parent)
	if err != nil {
		panic(err)
	}
	return d
}

// TestFoldRootedStillValid keeps the defensive validation path covered now
// that hot paths skip it: folds of random decompositions must re-validate.
func TestFoldRootedStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prevDebug := debugValidate
	debugValidate = true
	defer func() { debugValidate = prevDebug }()
	for trial := 0; trial < 25; trial++ {
		d := randomCoherentDecomposition(rng)
		if _, _, err := FoldRooted(d.Root(0)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

package tw_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tw"
)

// TestLemma2VortexExtensionWidth reproduces Lemma 2's shape: a planar graph
// of diameter D with one vortex of depth k has treewidth O((g+1)kD). We
// build the vortex graph, decompose the base by cotree bags, extend with
// AddAttachedVertices, and check the width stays within a constant of
// k times the base width.
func TestLemma2VortexExtensionWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3} {
		a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
			Base:        gen.Grid(7, 7),
			NumVortices: 1,
			VortexDepth: k,
			VortexNodes: 5,
		}, rng)
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		bt, err := graph.BFSTree(a.Base, 0)
		if err != nil {
			t.Fatal(err)
		}
		baseD, err := tw.FromEmbeddingByCotree(a.BaseEmb, bt)
		if err != nil {
			t.Fatal(err)
		}
		attach := make([][]int, a.G.N()-a.BaseN)
		for v := a.BaseN; v < a.G.N(); v++ {
			for _, arc := range a.G.Adj(v) {
				attach[v-a.BaseN] = append(attach[v-a.BaseN], arc.To)
			}
		}
		full, err := tw.AddAttachedVertices(baseD, a.G, a.BaseN, attach)
		if err != nil {
			t.Fatal(err)
		}
		if err := full.Validate(); err != nil {
			t.Fatal(err)
		}
		// Lemma 2 shape: width grows by at most a k-dependent factor.
		bound := (k + 2) * (baseD.Width() + 2)
		if full.Width() > bound {
			t.Fatalf("k=%d: extended width %d exceeds Lemma 2 shape %d (base %d)",
				k, full.Width(), bound, baseD.Width())
		}
	}
}

// TestAddAttachedVerticesErrors checks the input validation.
func TestAddAttachedVerticesErrors(t *testing.T) {
	g := gen.Path(4)
	bt, _ := graph.BFSTree(g, 0)
	e := gen.Grid(2, 2)
	d, err := tw.FromEmbeddingByCotree(e.Emb, func() *graph.Tree {
		tr, _ := graph.BFSTree(e.G, 0)
		return tr
	}())
	if err != nil {
		t.Fatal(err)
	}
	_ = bt
	// Wrong attach count.
	if _, err := tw.AddAttachedVertices(d, g, 2, [][]int{{0}}); err == nil {
		t.Fatal("accepted mismatched attach list")
	}
}

// TestAddAttachedVerticesIsolated places an unattached vertex in bag 0.
func TestAddAttachedVerticesIsolated(t *testing.T) {
	// Base: single edge. Full: base + isolated-ish vertex attached nowhere
	// (no edges), allowed by placing it in bag 0.
	full := graph.New(3)
	full.AddEdge(0, 1, 1)
	base := graph.New(2)
	base.AddEdge(0, 1, 1)
	d := &tw.Decomposition{G: base, Bags: [][]int{{0, 1}}, Adj: make([][]int, 1)}
	nd, err := tw.AddAttachedVertices(d, full, 2, [][]int{nil})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range nd.Bags[0] {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("unattached vertex not in bag 0")
	}
}

// TestTrivialDecomposition covers the fallback.
func TestTrivialDecomposition(t *testing.T) {
	g := gen.Cycle(5)
	d := tw.TrivialDecomposition(g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Width() != 4 {
		t.Fatalf("width %d", d.Width())
	}
}

// TestTorusColumnsDecomposition validates the genus witness generator.
func TestTorusColumnsDecomposition(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {4, 6}, {5, 5}} {
		e := gen.Torus(dims[0], dims[1])
		d := gen.TorusColumnsDecomposition(e, dims[0], dims[1])
		if err := d.Validate(); err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if d.Width() > 3*dims[0] {
			t.Fatalf("%v: width %d too large", dims, d.Width())
		}
	}
}

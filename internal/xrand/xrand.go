// Package xrand centralizes deterministic, seedable randomness so that every
// generator, test, and benchmark in the repository is reproducible.
package xrand

import "math/rand"

// New returns a deterministic *rand.Rand for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Perm returns a deterministic permutation of n elements for the given rng.
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// Shuffle shuffles xs in place deterministically.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Pick returns a uniformly random element of xs.
func Pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// Package xrand centralizes deterministic, seedable randomness so that every
// generator, test, and benchmark in the repository is reproducible.
package xrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// pcgSource adapts math/rand/v2's PCG generator to the math/rand Source64
// interface. Seeding a PCG is O(1), unlike the legacy rngSource whose Seed
// runs a 607-word warmup — measurable when experiment drivers derive one
// RNG per grid point.
type pcgSource struct{ pcg *randv2.PCG }

func (s pcgSource) Int63() int64    { return int64(s.pcg.Uint64() >> 1) }
func (s pcgSource) Uint64() uint64  { return s.pcg.Uint64() }
func (s pcgSource) Seed(seed int64) { s.pcg.Seed(uint64(seed), 0xda3e39cb94b95bdb) }

// New returns a deterministic *rand.Rand for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(pcgSource{pcg: randv2.NewPCG(uint64(seed), 0xda3e39cb94b95bdb)})
}

// Perm returns a deterministic permutation of n elements for the given rng.
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// Shuffle shuffles xs in place deterministically.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Pick returns a uniformly random element of xs.
func Pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

package xrand_test

import (
	"testing"

	"repro/internal/xrand"
)

func TestDeterminism(t *testing.T) {
	a, b := xrand.New(7), xrand.New(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
	c := xrand.New(8)
	same := true
	a2 := xrand.New(7)
	for i := 0; i < 10; i++ {
		if a2.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestPermAndShuffle(t *testing.T) {
	rng := xrand.New(1)
	p := xrand.Perm(rng, 10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	xs := []string{"a", "b", "c", "d"}
	xrand.Shuffle(rng, xs)
	if len(xs) != 4 {
		t.Fatal("shuffle changed length")
	}
	if got := xrand.Pick(rng, xs); got == "" {
		t.Fatal("pick returned zero value")
	}
}

// Package repro is a reproduction of "Minor Excluded Network Families Admit
// Fast Distributed Algorithms" (Haeupler, Li, Zuzic; PODC 2018): a library
// for building networks from excluded-minor graph families, constructing
// tree-restricted low-congestion shortcuts on them — both obliviously and
// from Graph-Structure-Theorem witnesses — and running the shortcut-
// framework distributed algorithms (MST, (1+ε)-approximate min-cut,
// (1+ε)-approximate single-source shortest paths) on a CONGEST simulator
// with exact round accounting.
//
// This package is the high-level facade; the machinery lives in internal/
// packages (graph, embed, tw, structure, gen, partition, shortcut, core,
// congest, mst, mincut, sssp). Type aliases re-export what users need.
//
// Quick start:
//
//	nw, _ := repro.GridNetwork(16, 16, 1)
//	parts, _ := nw.VoronoiParts(12)
//	sc, _ := nw.BuildShortcut(parts)
//	fmt.Println(sc.Measurement.Quality)
//	res, _ := nw.MST()
//	fmt.Println(res.CommRounds, res.Weight)
package repro

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/shortcut"
	"repro/internal/sssp"
	"repro/internal/structure"
	"repro/internal/xrand"
)

// Graph is the weighted undirected multigraph used throughout.
type Graph = graph.Graph

// Tree is a rooted spanning tree with graph-edge identities.
type Tree = graph.Tree

// Parts is a family of disjoint connected vertex subsets (Definition 9).
type Parts = partition.Parts

// Shortcut is a tree-restricted shortcut assignment (Definition 10).
type Shortcut = shortcut.Shortcut

// Measurement holds congestion, block parameter and quality (Defs. 11-13).
type Measurement = shortcut.Measurement

// Network couples a connected graph with a BFS spanning tree and whatever
// structural witnesses its generator provided. Witnesses steer BuildShortcut
// toward the matching construction from the paper.
type Network struct {
	G    *Graph
	Tree *Tree

	// At most one witness is typically set.
	CliqueSum   *core.CliqueSumWitness
	AlmostEmbed *structure.AlmostEmbeddable
	KTree       *gen.KTreeGraph

	seed int64
}

// NewNetwork wraps a connected graph, rooting a BFS tree at root.
func NewNetwork(g *Graph, root int) (*Network, error) {
	t, err := graph.BFSTree(g, root)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Network{G: g, Tree: t, seed: 1}, nil
}

// GridNetwork builds a rows x cols planar grid network with uniformly random
// edge weights (deterministic in seed).
func GridNetwork(rows, cols int, seed int64) (*Network, error) {
	rng := xrand.New(seed)
	e := gen.Grid(rows, cols)
	gen.DistinctWeights(gen.UniformWeights(e.G, rng))
	nw, err := NewNetwork(e.G, 0)
	if err != nil {
		return nil, err
	}
	nw.seed = seed
	return nw, nil
}

// PlanarNetwork builds a random maximal planar network (Apollonian) on n
// vertices.
func PlanarNetwork(n int, seed int64) (*Network, error) {
	rng := xrand.New(seed)
	a := gen.NewApollonian(n, rng)
	gen.DistinctWeights(gen.UniformWeights(a.G, rng))
	nw, err := NewNetwork(a.G, 0)
	if err != nil {
		return nil, err
	}
	nw.seed = seed
	return nw, nil
}

// ExcludedMinorNetwork builds a K5-minor-free network: a 3-clique-sum of
// random planar triangulations (Wagner's characterization), carrying its
// clique-sum witness so BuildShortcut can realize Theorem 6.
func ExcludedMinorNetwork(numBags, bagSize int, seed int64) (*Network, error) {
	rng := xrand.New(seed)
	pieces := make([]*gen.Piece, numBags)
	for i := range pieces {
		pieces[i] = gen.ApollonianPiece(bagSize, rng)
	}
	cs := gen.CliqueSum(pieces, 3, rng)
	gen.DistinctWeights(gen.UniformWeights(cs.G, rng))
	nw, err := NewNetwork(cs.G, 0)
	if err != nil {
		return nil, err
	}
	nw.CliqueSum = &core.CliqueSumWitness{
		CST:         cs.CST,
		BagGraphs:   cs.BagGraphs,
		BagDecomp:   cs.BagDecomp,
		BagToGlobal: cs.BagToGlobal,
	}
	nw.seed = seed
	return nw, nil
}

// ApexNetwork builds a planar grid plus one apex connected to every base
// vertex (the paper's diameter-collapsing scenario, §2.3.2), rooted at the
// apex, carrying its almost-embeddable witness.
func ApexNetwork(rows, cols int, seed int64) (*Network, error) {
	rng := xrand.New(seed)
	a := gen.PlanarWithApex(rows, cols, rng)
	gen.DistinctWeights(gen.UniformWeights(a.G, rng))
	nw, err := NewNetwork(a.G, a.Apices[0])
	if err != nil {
		return nil, err
	}
	nw.AlmostEmbed = a
	nw.seed = seed
	return nw, nil
}

// KTreeNetwork builds a random k-tree network carrying its treewidth
// witness.
func KTreeNetwork(n, k int, seed int64) (*Network, error) {
	rng := xrand.New(seed)
	kt := gen.KTree(n, k, rng)
	gen.DistinctWeights(gen.UniformWeights(kt.G, rng))
	nw, err := NewNetwork(kt.G, 0)
	if err != nil {
		return nil, err
	}
	nw.KTree = kt
	nw.seed = seed
	return nw, nil
}

// VoronoiParts partitions the network into numSeeds connected parts by
// multi-source BFS from random seeds.
func (nw *Network) VoronoiParts(numSeeds int) (*Parts, error) {
	return partition.Voronoi(nw.G, numSeeds, xrand.New(nw.seed+101))
}

// FragmentParts returns the Borůvka fragments after the given number of
// phases — the part family the MST algorithm actually queries.
func (nw *Network) FragmentParts(phases int) (*Parts, error) {
	return partition.BoruvkaFragments(nw.G, phases)
}

// ShortcutResult couples a shortcut with its measurement and diagnostics.
type ShortcutResult struct {
	S           *Shortcut
	Measurement Measurement
	Info        map[string]int
}

// BuildShortcut constructs a tree-restricted shortcut for the given parts:
// the witness-matched construction when a witness is present (Theorems 6-8,
// via internal/core), compared against the oblivious construction
// ([HIZ16a]-style), returning whichever measures better — mirroring the
// paper's remark that the framework algorithm is free to do better than the
// existence bound.
func (nw *Network) BuildShortcut(p *Parts) (*ShortcutResult, error) {
	candidates := []*core.Result{core.FromOblivious(nw.G, nw.Tree, p)}
	switch {
	case nw.CliqueSum != nil:
		r, err := core.ExcludedMinorShortcut(nw.G, nw.Tree, p, nw.CliqueSum)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, r)
	case nw.AlmostEmbed != nil:
		r, err := core.AlmostEmbeddableShortcut(nw.G, nw.Tree, p, nw.AlmostEmbed)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, r)
	case nw.KTree != nil:
		tr, err := shortcut.FromTreewidth(nw.G, nw.Tree, p, nw.KTree.Decomp)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, &core.Result{S: tr.S, M: tr.S.Measure(), Info: map[string]int{
			"foldedHeight": tr.FoldedHeight,
			"foldedWidth":  tr.FoldedWidth,
		}})
	}
	best := core.BestOf(candidates...)
	return &ShortcutResult{S: best.S, Measurement: best.M, Info: best.Info}, nil
}

// ConstructResult reports a distributed in-network shortcut construction.
type ConstructResult = congest.ConstructResult

// ConstructShortcut builds a tree-restricted shortcut fully in-network: the
// part-wise flooding construction with congestion cap (0 runs the
// in-network doubling cap search, congest.SearchCap, and its rounds are
// part of the result). With simulate the construction runs as an actual
// CONGEST protocol and reports measured rounds; otherwise the fixed point
// is computed sequentially and the framework's construction budget is
// charged — the two-ledger convention of MST/min-cut/SSSP. Unlike
// BuildShortcut, no structure witness is consulted: this is what a deployed
// network can do on its own.
func (nw *Network) ConstructShortcut(p *Parts, cap int, simulate bool) (*ConstructResult, error) {
	if cap < 1 {
		sr, err := congest.SearchCap(nw.G, nw.Tree, p, congest.SearchOptions{Simulate: simulate})
		if err != nil {
			return nil, err
		}
		return &ConstructResult{
			S:               sr.S,
			Cap:             sr.Cap,
			Stats:           sr.Stats,
			EffectiveRounds: sr.EffectiveRounds,
			ChargedRounds:   sr.ChargedRounds,
		}, nil
	}
	return congest.ConstructShortcut(nw.G, nw.Tree, p, congest.ConstructOptions{Cap: cap, Simulate: simulate})
}

// bootstrap runs the zero-witness setup over the network: leader election
// plus distributed BFS, yielding the elected tree and its two-ledger cost.
func (nw *Network) bootstrap(simulate bool) (*pipeline.Setup, error) {
	return pipeline.SelfSetup(nw.G, simulate)
}

// FaultPlan is a deterministic fault schedule for simulated runs: seeded
// per-edge Bernoulli message drops (with an optional horizon), link
// outages over round intervals, and node crash/restart windows.
type FaultPlan = congest.FaultPlan

// LinkDown takes one edge down for a global-round interval.
type LinkDown = congest.LinkDown

// Crash takes one node down (optionally wiping its protocol state at
// restart) for a global-round interval.
type Crash = congest.Crash

// Adversary drives a FaultPlan across a sequence of protocol runs,
// advancing the fault timeline between retries and counting them.
type Adversary = congest.Adversary

// NewAdversary wraps a fault plan for resilient runs.
func NewAdversary(plan FaultPlan) *Adversary { return congest.NewAdversary(plan) }

// ConstructShortcutResilient is ConstructShortcut (simulate mode) on a
// degraded network: every protocol runs under the adversary's fault plan,
// retrying with doubled budgets on non-convergence, and — whenever the
// plan leaves the graph connected — converges to the identical shortcut
// and cap as the fault-free run. cap < 1 runs the resilient in-network cap
// search.
func (nw *Network) ConstructShortcutResilient(p *Parts, cap int, adv *Adversary) (*ConstructResult, error) {
	if cap < 1 {
		sr, err := congest.SearchCap(nw.G, nw.Tree, p, congest.SearchOptions{Simulate: true, Adversary: adv})
		if err != nil {
			return nil, err
		}
		return &ConstructResult{
			S:               sr.S,
			Cap:             sr.Cap,
			Stats:           sr.Stats,
			EffectiveRounds: sr.EffectiveRounds,
			ChargedRounds:   sr.ChargedRounds,
		}, nil
	}
	return congest.ConstructShortcut(nw.G, nw.Tree, p, congest.ConstructOptions{Cap: cap, Simulate: true, Adversary: adv})
}

// MaintainedShortcut is a shortcut kept consistent under edge churn via
// dirty-path repair (shortcut.Maintain/Repair).
type MaintainedShortcut = shortcut.Maintained

// ChurnEvent is one churn event for MaintainShortcut: a weight update, an
// edge insert, or an edge delete.
type ChurnEvent = shortcut.Event

// RepairReport describes what one repair did: dirty vertices, modeled
// repair rounds, tree patching, and the rebuild recommendation.
type RepairReport = shortcut.RepairReport

// Churn event kinds (re-exported).
const (
	WeightUpdate = shortcut.WeightUpdate
	EdgeInsert   = shortcut.EdgeInsert
	EdgeDelete   = shortcut.EdgeDelete
)

// MaintainShortcut builds the flooding construction at the given cap
// (cap < 1 first runs the in-network cap search, analytic mode) and wraps
// it for incremental repair under churn: feed edge events to Repair on the
// returned value; it re-floods admissions only along the dirty tree path
// and recommends a full rebuild when quality degrades past rebuildFactor
// (values <= 1 select the default threshold of 2).
func (nw *Network) MaintainShortcut(p *Parts, cap int, rebuildFactor float64) (*MaintainedShortcut, error) {
	if cap < 1 {
		sr, err := congest.SearchCap(nw.G, nw.Tree, p, congest.SearchOptions{})
		if err != nil {
			return nil, err
		}
		return shortcut.MaintainPrio(nw.G, nw.Tree, p, sr.Cap, sr.Priorities, rebuildFactor)
	}
	return shortcut.Maintain(nw.G, nw.Tree, p, cap, rebuildFactor)
}

// MSTConstructed runs the shortcut-framework Borůvka with zero
// generator-supplied structure: the network elects a leader, builds its own
// BFS tree, and per phase runs the in-network doubling cap search with
// block-count part priorities — no witness, tree, or cap input. simulate
// selects the measured-rounds ledger for every bootstrap and construction
// round; otherwise the framework budgets are charged.
func (nw *Network) MSTConstructed(simulate bool) (*MSTResult, error) {
	setup, err := nw.bootstrap(simulate)
	if err != nil {
		return nil, err
	}
	rs, err := mst.ShortcutBoruvka(nw.G, setup.Provider())
	if err != nil {
		return nil, err
	}
	rs.CommRounds += setup.Cost.Simulated
	rs.ChargedRounds += setup.Cost.Charged
	return rs, nil
}

// MinCutConstructed runs the tree-packing (1+ε)-approximate minimum cut
// with zero generator-supplied structure: every packing iteration's MST
// runs the distributed Borůvka over the self-built tree (transferred onto
// the iteration's reweighted copy) with in-network cap-searched shortcuts.
// The bootstrap's rounds are folded into the matching ledger.
func (nw *Network) MinCutConstructed(eps float64, simulate bool) (*CutResult, error) {
	setup, err := nw.bootstrap(simulate)
	if err != nil {
		return nil, err
	}
	res, err := mincut.Approx(nw.G, mincut.Options{
		Eps:           eps,
		TwoRespecting: nw.G.N() <= 400,
		SimulateMST:   simulate,
		ProviderFor: func(h *graph.Graph) (pipeline.Provider, error) {
			ht, err := setup.TreeFor(h)
			if err != nil {
				return nil, err
			}
			return pipeline.AutoFlood(h, ht, simulate), nil
		},
	})
	if err != nil {
		return nil, err
	}
	res.CommRounds += setup.Cost.Simulated
	res.ChargedRounds += setup.Cost.Charged
	return res, nil
}

// SSSPSelfSufficient runs the (1+ε)-approximate single-source shortest
// paths with zero generator-supplied structure: the network elects a
// leader, builds its own BFS tree, decomposes itself into Borůvka
// fragments in-network (per phase, a pipelined min-convergecast of
// fragment-best outgoing edges plus a pipelined relabeling broadcast over
// the elected tree — congest.BoruvkaDecompose), cap-searches a shortcut
// over the fragments, and runs the part-wise relaxation. In simulate mode
// every decomposition round is measured on the engine; analytic mode
// charges the pipelined O(height + fragments) budget per phase.
func (nw *Network) SSSPSelfSufficient(src int, eps float64, simulate bool) (*SSSPResult, error) {
	setup, err := nw.bootstrap(simulate)
	if err != nil {
		return nil, err
	}
	phases := 2
	for n := nw.G.N(); (1 << (2 * phases)) < n; phases++ {
	}
	parts, decompCost, err := setup.Decompose(phases)
	if err != nil {
		return nil, err
	}
	r, err := sssp.ApproxProvided(nw.G, src, parts, setup.Provider(), sssp.Options{Eps: eps, Simulate: simulate})
	if err != nil {
		return nil, err
	}
	r.CommRounds += setup.Cost.Simulated + decompCost.Simulated
	r.ChargedRounds += setup.Cost.Charged + decompCost.Charged
	return r, nil
}

// MSTResult reports a distributed MST run.
type MSTResult = mst.RunStats

// MST runs the shortcut-framework Borůvka (Theorem 1 + Corollary 1) on the
// network, using witness-based shortcuts when available.
func (nw *Network) MST() (*MSTResult, error) {
	provider := func(p *Parts) (*Shortcut, pipeline.Rounds, error) {
		sc, err := nw.BuildShortcut(p)
		if err != nil {
			return nil, pipeline.Rounds{}, err
		}
		return sc.S, pipeline.Rounds{Charged: sc.Measurement.Quality}, nil
	}
	return mst.ShortcutBoruvka(nw.G, provider)
}

// MSTBaseline runs the same algorithm without any shortcuts (naive
// fragment-internal flooding).
func (nw *Network) MSTBaseline() (*MSTResult, error) {
	return mst.ShortcutBoruvka(nw.G, mst.EmptyProvider(nw.G, nw.Tree))
}

// MSTPipelined runs the O(D+√n)-style two-phase baseline.
func (nw *Network) MSTPipelined() (*MSTResult, error) {
	return mst.PipelinedMST(nw.G)
}

// CutResult reports an approximate min-cut run.
type CutResult = mincut.Result

// ApproxMinCut runs the tree-packing (1+ε)-approximate minimum cut
// (Corollary 1). TwoRespecting evaluation is enabled for networks small
// enough to afford it.
func (nw *Network) ApproxMinCut(eps float64) (*CutResult, error) {
	return mincut.Approx(nw.G, mincut.Options{
		Eps:           eps,
		TwoRespecting: nw.G.N() <= 400,
	})
}

// ExactMinCut computes the exact minimum cut (Stoer-Wagner reference).
func (nw *Network) ExactMinCut() (float64, []int, error) {
	return graph.GlobalMinCut(nw.G)
}

// SSSPResult reports an approximate shortest-path run.
type SSSPResult = sssp.Result

// ApproxSSSP runs the (1+ε)-approximate single-source shortest paths of
// the shortcut framework from src over the given parts, using
// witness-matched shortcuts when available. Distances over-estimate the
// true ones by at most the factor 1+ε.
func (nw *Network) ApproxSSSP(src int, p *Parts, eps float64) (*SSSPResult, error) {
	sc, err := nw.BuildShortcut(p)
	if err != nil {
		return nil, err
	}
	return sssp.Approx(nw.G, src, p, sc.S, sssp.Options{Eps: eps})
}

// ExactSSSP computes exact shortest paths (Dijkstra reference).
func (nw *Network) ExactSSSP(src int) (*graph.SPResult, error) {
	return graph.Dijkstra(nw.G, src)
}

// BatchSSSPResult reports a batched k-source approximate shortest-path
// run.
type BatchSSSPResult = sssp.BatchResult

// ApproxSSSPBatch runs the batched k-source (1+ε)-SSSP: one relaxation
// schedule pipelines every source's tokens (tag = source index) over the
// same witness-matched shortcut, returning per-source distance vectors
// bit-identical to k sequential ApproxSSSP runs at O(h+k) rounds per
// phase instead of k·O(h).
func (nw *Network) ApproxSSSPBatch(srcs []int, p *Parts, eps float64) (*BatchSSSPResult, error) {
	sc, err := nw.BuildShortcut(p)
	if err != nil {
		return nil, err
	}
	return sssp.ApproxBatch(nw.G, srcs, p, sc.S, sssp.Options{Eps: eps})
}

// DistanceOracle serves (1+ε)-approximate distance queries over one
// constructed shortcut: cache misses run batched k-source SSSP, hits cost
// zero communication rounds, and churn events on a maintained shortcut
// flush the cache through the repair hook.
type DistanceOracle = query.Oracle

// OracleOptions configures a DistanceOracle (stretch, ledger mode, cache
// capacity).
type OracleOptions = query.Options

// OracleStats is a DistanceOracle cache/cost snapshot.
type OracleStats = query.Stats

// TraceOptions configures a synthetic query-trace replay against a
// DistanceOracle.
type TraceOptions = query.TraceOptions

// TraceReport summarizes a replayed query trace: hit rate, rounds per
// query, throughput, and the determinism checksum.
type TraceReport = query.Report

// NewDistanceOracle builds a distance oracle over the given parts using
// the witness-matched shortcut construction.
func (nw *Network) NewDistanceOracle(p *Parts, opts OracleOptions) (*DistanceOracle, error) {
	sc, err := nw.BuildShortcut(p)
	if err != nil {
		return nil, err
	}
	return query.New(nw.G, p, sc.S, opts)
}

// MaintainedDistanceOracle couples a distance oracle to a maintained
// shortcut (see MaintainShortcut): churn events fed to the returned
// maintainer's Repair invalidate the oracle's cache, so post-churn queries
// recompute against the repaired construction.
func (nw *Network) MaintainedDistanceOracle(p *Parts, cap int, rebuildFactor float64, opts OracleOptions) (*DistanceOracle, *MaintainedShortcut, error) {
	m, err := nw.MaintainShortcut(p, cap, rebuildFactor)
	if err != nil {
		return nil, nil, err
	}
	o, err := query.FromMaintained(m, opts)
	if err != nil {
		return nil, nil, err
	}
	return o, m, nil
}

// ReplayTrace drives a seeded Zipf-skewed synthetic query trace against
// the oracle: per window, distinct missing sources are computed in one
// batched k-source run, then the window is served concurrently from the
// cache. The report's deterministic fields are byte-identical across
// worker counts.
func ReplayTrace(o *DistanceOracle, t TraceOptions) (*TraceReport, error) {
	return query.Replay(o, t)
}

// Diameter returns the exact hop diameter for small networks and the
// double-sweep estimate for large ones (> 4000 vertices).
func (nw *Network) Diameter() int {
	if nw.G.N() > 4000 {
		return graph.DiameterApprox(nw.G)
	}
	return graph.Diameter(nw.G)
}

package repro_test

import (
	"testing"

	"repro"
	"repro/internal/graph"
)

func TestGridNetworkFacade(t *testing.T) {
	nw, err := repro.GridNetwork(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := nw.VoronoiParts(6)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := nw.BuildShortcut(parts)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Measurement.Quality <= 0 {
		t.Fatal("no quality measured")
	}
	res, err := nw.MST()
	if err != nil {
		t.Fatal(err)
	}
	_, kW := graph.Kruskal(nw.G)
	if diff := res.Weight - kW; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("MST weight %v want %v", res.Weight, kW)
	}
}

func TestExcludedMinorNetworkFacade(t *testing.T) {
	nw, err := repro.ExcludedMinorNetwork(4, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nw.CliqueSum == nil {
		t.Fatal("witness missing")
	}
	parts, err := nw.VoronoiParts(8)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := nw.BuildShortcut(parts)
	if err != nil {
		t.Fatal(err)
	}
	if sc.S == nil {
		t.Fatal("no shortcut")
	}
}

func TestApexNetworkFacade(t *testing.T) {
	nw, err := repro.ApexNetwork(6, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := nw.Diameter(); d != 2 {
		t.Fatalf("apex network diameter %d want 2", d)
	}
	parts, err := nw.FragmentParts(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.BuildShortcut(parts); err != nil {
		t.Fatal(err)
	}
}

func TestKTreeNetworkFacadeAndMinCut(t *testing.T) {
	nw, err := repro.KTreeNetwork(60, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := nw.ApproxMinCut(0.2)
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := nw.ExactMinCut()
	if err != nil {
		t.Fatal(err)
	}
	if cut.Value < exact-1e-9 {
		t.Fatal("cut below exact minimum")
	}
}

func TestBaselinesProduceSameTree(t *testing.T) {
	nw, err := repro.PlanarNetwork(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := nw.MST()
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.MSTBaseline()
	if err != nil {
		t.Fatal(err)
	}
	c, err := nw.MSTPipelined()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIDs) != len(b.EdgeIDs) || len(b.EdgeIDs) != len(c.EdgeIDs) {
		t.Fatal("algorithms disagree on MST size")
	}
	for i := range a.EdgeIDs {
		if a.EdgeIDs[i] != b.EdgeIDs[i] || b.EdgeIDs[i] != c.EdgeIDs[i] {
			t.Fatal("algorithms disagree on MST edges")
		}
	}
}

// TestZeroWitnessFacade: the three self-sufficient entry points run with
// no witness, tree, or cap input — leader election, BFS tree, cap search,
// and part priorities all happen in-network — and still meet their
// algorithmic guarantees, with the bootstrap rounds in the ledger matching
// the mode.
func TestZeroWitnessFacade(t *testing.T) {
	nw, err := repro.GridNetwork(6, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, kW := graph.Kruskal(nw.G)
	exactCut, _, err := nw.ExactMinCut()
	if err != nil {
		t.Fatal(err)
	}
	exactSP, err := nw.ExactSSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.25
	for _, simulate := range []bool{false, true} {
		mstRes, err := nw.MSTConstructed(simulate)
		if err != nil {
			t.Fatalf("MSTConstructed simulate=%v: %v", simulate, err)
		}
		if diff := mstRes.Weight - kW; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("simulate=%v: zero-witness MST weight %v want %v", simulate, mstRes.Weight, kW)
		}
		cut, err := nw.MinCutConstructed(eps, simulate)
		if err != nil {
			t.Fatalf("MinCutConstructed simulate=%v: %v", simulate, err)
		}
		if cut.Value < exactCut-1e-9 {
			t.Fatalf("simulate=%v: cut %v below exact minimum %v", simulate, cut.Value, exactCut)
		}
		if w := graph.CutWeight(nw.G, cut.Side); w-cut.Value > 1e-6 || cut.Value-w > 1e-6 {
			t.Fatalf("simulate=%v: reported %v but side cuts %v", simulate, cut.Value, w)
		}
		sp, err := nw.SSSPSelfSufficient(0, eps, simulate)
		if err != nil {
			t.Fatalf("SSSPSelfSufficient simulate=%v: %v", simulate, err)
		}
		for v := 1; v < nw.G.N(); v++ {
			if sp.Dist[v] < exactSP.Dist[v]-1e-9 || sp.Dist[v] > exactSP.Dist[v]*(1+eps)+1e-9 {
				t.Fatalf("simulate=%v vertex %d: %v vs exact %v outside [d, (1+eps)d]",
					simulate, v, sp.Dist[v], exactSP.Dist[v])
			}
		}
		// Ledger exclusivity end-to-end: the MST and SSSP paths book every
		// round in the mode's ledger (min-cut's 1-respecting convergecast
		// stays analytic by design, so only its simulated side is checked).
		if simulate {
			if mstRes.ChargedRounds != 0 || sp.ChargedRounds != 0 {
				t.Fatalf("simulate=true leaked charges: mst %d sssp %d", mstRes.ChargedRounds, sp.ChargedRounds)
			}
			if mstRes.CommRounds <= 0 || sp.CommRounds <= 0 || cut.CommRounds <= 0 {
				t.Fatal("simulate=true booked no measured rounds")
			}
		} else if mstRes.ChargedRounds <= 0 || sp.ChargedRounds <= 0 || cut.ChargedRounds <= 0 {
			t.Fatal("simulate=false booked no charged rounds")
		}
	}
}

func TestSSSPFacade(t *testing.T) {
	nw, err := repro.ExcludedMinorNetwork(3, 14, 4)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := nw.VoronoiParts(6)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.1
	approx, err := nw.ApproxSSSP(0, parts, eps)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := nw.ExactSSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < nw.G.N(); v++ {
		if approx.Dist[v] < exact.Dist[v]-1e-9 || approx.Dist[v] > exact.Dist[v]*(1+eps)+1e-9 {
			t.Fatalf("vertex %d: approx %v vs exact %v outside [d, (1+eps)d]", v, approx.Dist[v], exact.Dist[v])
		}
	}
	if approx.ChargedRounds <= 0 || approx.Phases <= 0 {
		t.Fatalf("no rounds accounted: %+v", approx)
	}
}

// TestResilienceAndChurnFacade exercises the fault-injection and
// self-healing entry points end to end: a resilient in-network cap search
// under a connectivity-preserving fault plan must converge to the
// fault-free shortcut, and a maintained shortcut must absorb churn events
// with dirty-path repairs.
func TestResilienceAndChurnFacade(t *testing.T) {
	nw, err := repro.GridNetwork(6, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := nw.VoronoiParts(6)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := nw.ConstructShortcut(p, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	adv := repro.NewAdversary(repro.FaultPlan{
		Seed:      5,
		DropProb:  0.15,
		DropUntil: 250,
		LinkDowns: []repro.LinkDown{{Edge: 2, From: 1, To: 20}},
		Crashes:   []repro.Crash{{Node: 7, Round: 3, Restart: 12}},
	})
	faulted, err := nw.ConstructShortcutResilient(p, 0, adv)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Cap != clean.Cap {
		t.Fatalf("resilient cap %d, fault-free %d", faulted.Cap, clean.Cap)
	}
	if fq, cq := faulted.S.Measure().Quality, clean.S.Measure().Quality; fq != cq {
		t.Fatalf("resilient quality %d, fault-free %d", fq, cq)
	}

	m, err := nw.MaintainShortcut(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Delete a tree edge: the repair must splice and stay consistent.
	id := m.T.ParentEdge[m.T.Order[len(m.T.Order)-1]]
	rep, err := m.Repair(repro.ChurnEvent{Kind: repro.EdgeDelete, Edge: id})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TreePatched || rep.RepairRounds < 2 {
		t.Fatalf("tree-edge delete not repaired: %+v", rep)
	}
	if _, err := m.Repair(repro.ChurnEvent{Kind: repro.WeightUpdate, Edge: m.T.ParentEdge[1], W: 3}); err != nil {
		t.Fatal(err)
	}
	if m.Quality() <= 0 {
		t.Fatalf("maintained quality %d after churn", m.Quality())
	}
}
